package psys

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"optimus/internal/speedfit"
)

// coordClient is a gob request/response client to the coordinator.
type coordClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialCoordinator connects to a coordinator process.
func DialCoordinator(addr string) (*coordClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psys: dial coordinator %s: %w", addr, err)
	}
	return &coordClient{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}, nil
}

func (c *coordClient) call(req distRequest) (distResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return distResponse{}, fmt.Errorf("psys: coordinator send: %w", err)
	}
	var resp distResponse
	if err := c.dec.Decode(&resp); err != nil {
		return distResponse{}, fmt.Errorf("psys: coordinator recv: %w", err)
	}
	if resp.Err != "" {
		return distResponse{}, fmt.Errorf("psys: coordinator: %s", resp.Err)
	}
	return resp, nil
}

// Status fetches the coordinator's aggregate view remotely.
func (c *coordClient) Status() (DistStatus, error) {
	resp, err := c.call(distRequest{Op: "status"})
	if err != nil {
		return DistStatus{}, err
	}
	if resp.Status == nil {
		return DistStatus{}, fmt.Errorf("psys: empty status")
	}
	return *resp.Status, nil
}

// Close releases the control connection.
func (c *coordClient) Close() error { return c.conn.Close() }

// DistServer is one parameter-server process.
type DistServer struct {
	Index int
	srv   *Server
	tcp   *TCPServer
}

// RunDistServer registers with the coordinator, hosts the assigned blocks
// and serves them over TCP on serveAddr (use "127.0.0.1:0").
func RunDistServer(coordAddr, serveAddr string) (*DistServer, error) {
	cc, err := DialCoordinator(coordAddr)
	if err != nil {
		return nil, err
	}
	defer cc.Close()

	// Phase 1: fetch the job spec (mode, learning rate, barrier width), so
	// the transport can come up before the slot is claimed.
	specResp, err := cc.call(distRequest{Op: "server-spec"})
	if err != nil {
		return nil, err
	}
	spec := specResp.Server
	if spec == nil {
		return nil, fmt.Errorf("psys: empty server spec")
	}
	srv, err := NewServer(spec.Mode, spec.LR, spec.Workers)
	if err != nil {
		return nil, err
	}
	if spec.Momentum > 0 {
		if err := srv.SetMomentum(spec.Momentum); err != nil {
			return nil, err
		}
	}
	ts, err := ServeTCP(srv, serveAddr)
	if err != nil {
		srv.Close()
		return nil, err
	}

	// Phase 2: claim a slot with the live address; receive the §5.3 block
	// assignment and initial parameters.
	resp, err := cc.call(distRequest{Op: "register-server", ServerAddr: ts.Addr()})
	if err != nil {
		_ = ts.Close()
		return nil, err
	}
	asn := resp.Server
	if asn == nil {
		_ = ts.Close()
		return nil, fmt.Errorf("psys: empty server assignment")
	}
	for _, b := range asn.Blocks {
		if err := srv.Host(b.ID, b.Params); err != nil {
			_ = ts.Close()
			return nil, err
		}
	}
	return &DistServer{Index: asn.Index, srv: srv, tcp: ts}, nil
}

// Addr is the server's transport address.
func (s *DistServer) Addr() string { return s.tcp.Addr() }

// Close stops the server.
func (s *DistServer) Close() error { return s.tcp.Close() }

// DistWorker is one worker process.
type DistWorker struct {
	ID     int
	worker *Worker
	coord  *coordClient
	model  Model
}

// RunDistWorker registers with the coordinator (blocking until all servers
// are up), dials every parameter server and returns a ready-to-train worker.
func RunDistWorker(coordAddr string) (*DistWorker, error) {
	cc, err := DialCoordinator(coordAddr)
	if err != nil {
		return nil, err
	}
	resp, err := cc.call(distRequest{Op: "register-worker"})
	if err != nil {
		cc.Close()
		return nil, err
	}
	asn := resp.Worker
	if asn == nil {
		cc.Close()
		return nil, fmt.Errorf("psys: empty worker assignment")
	}
	model, err := ModelFromSpec(asn.ModelSpec)
	if err != nil {
		cc.Close()
		return nil, err
	}
	layout, err := NewBlockLayout(asn.LayoutSizes)
	if err != nil {
		cc.Close()
		return nil, err
	}
	conns := make([]ServerConn, len(asn.ServerAddrs))
	for i, addr := range asn.ServerAddrs {
		conn, err := DialServer(addr)
		if err != nil {
			cc.Close()
			for _, c := range conns[:i] {
				_ = c.Close()
			}
			return nil, err
		}
		conns[i] = conn
	}
	w := newWorker(asn.ID, model, layout, asn.Owners, conns,
		Batch{X: asn.ShardX, Y: asn.ShardY}, asn.BatchSize, asn.Mode == speedfit.Sync)
	return &DistWorker{ID: asn.ID, worker: w, coord: cc, model: model}, nil
}

// Steps drives n training steps, reporting loss and compute time to the
// coordinator after each (the §3.1 loss stream + §5.2 speed signal).
func (w *DistWorker) Steps(n int) (lastLoss float64, err error) {
	for s := 0; s < n; s++ {
		loss, err := w.worker.Step()
		if err != nil {
			return 0, err
		}
		lastLoss = loss
		if _, err := w.coord.call(distRequest{
			Op: "report", WorkerID: w.ID, Step: w.worker.Round(),
			Loss: loss, ComputeNS: int64(w.worker.lastCompute / time.Nanosecond),
		}); err != nil {
			return 0, err
		}
	}
	return lastLoss, nil
}

// Close tears the worker down.
func (w *DistWorker) Close() error {
	w.worker.closeConns()
	return w.coord.Close()
}

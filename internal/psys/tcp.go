package psys

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// The TCP transport serializes push/pull as length-prefixed binary frames
// over a persistent connection — the shape of a real PS data plane (one
// connection per worker-server pair, §3.2's "handling TCP connections"
// overhead made concrete).
//
// Wire format (all integers little-endian):
//
//	frame    = uint32 payload length | payload
//	request  = op byte | uvarint block | uvarint minVersion | floats
//	response = uvarint errLen | errLen error bytes | uvarint version | floats
//	floats   = uvarint count | count × uint64 (IEEE-754 bits)
//
// Each connection owns a frame (encode/decode byte buffer plus a float
// scratch slice) drawn from a sync.Pool, so steady-state RPCs reuse the same
// buffers and the pool absorbs connection churn (worker replacement during
// elastic scaling re-dials every server).

const (
	opPush = 'p'
	opGet  = 'g'

	// maxFrameSize bounds a frame so a corrupt length prefix cannot make a
	// peer allocate unbounded memory.
	maxFrameSize = 1 << 30
)

var errFrameCorrupt = errors.New("psys: corrupt frame")

// frame is the reusable per-connection buffer pair.
type frame struct {
	buf  []byte
	vals []float64
}

var framePool = sync.Pool{New: func() interface{} { return new(frame) }}

// beginFrame resets buf to a 4-byte length placeholder.
func beginFrame(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0, 0)
}

// finishFrame patches the length prefix once the payload is complete.
func finishFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

func appendFloats(b []byte, vals []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func parseUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errFrameCorrupt
	}
	return v, b[n:], nil
}

// parseFloats decodes a float vector, appending into dst's backing array
// (dst may be nil, in which case a fresh slice is allocated).
func parseFloats(b []byte, dst []float64) ([]float64, []byte, error) {
	n, b, err := parseUvarint(b)
	if err != nil {
		return dst, nil, err
	}
	if uint64(len(b)) < 8*n {
		return dst, nil, errFrameCorrupt
	}
	out := dst[:0]
	for i := uint64(0); i < n; i++ {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out, b[8*n:], nil
}

// readFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the payload slice, which aliases buf.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return buf[:0], err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > maxFrameSize {
		return buf[:0], fmt.Errorf("psys: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf[:0], err
	}
	return buf, nil
}

// TCPServer exposes a Server over a TCP listener.
type TCPServer struct {
	srv *Server
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ServeTCP starts serving srv on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns immediately; the listener address is available via
// Addr.
func ServeTCP(srv *Server, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psys: listen: %w", err)
	}
	t := &TCPServer{srv: srv, ln: ln, conns: make(map[net.Conn]struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	f := framePool.Get().(*frame)
	defer framePool.Put(f)
	for {
		payload, err := readFrame(conn, f.buf)
		f.buf = payload
		if err != nil {
			return // client went away
		}
		if len(payload) < 1 {
			return
		}
		op := payload[0]
		rest := payload[1:]
		block, rest, perr := parseUvarint(rest)
		if perr != nil {
			return
		}
		minVersion, rest, perr := parseUvarint(rest)
		if perr != nil {
			return
		}

		var errStr string
		var version int
		var params []float64
		switch op {
		case opPush:
			grad, _, perr := parseFloats(rest, f.vals)
			f.vals = grad
			if perr != nil {
				return
			}
			if err := t.srv.Push(int(block), grad); err != nil {
				errStr = err.Error()
			}
		case opGet:
			p, v, err := t.srv.PullInto(int(block), int(minVersion), f.vals)
			if err != nil {
				errStr = err.Error()
			} else {
				params, version = p, v
				f.vals = p
			}
		default:
			errStr = fmt.Sprintf("psys: unknown op %q", op)
		}

		out := beginFrame(f.buf)
		out = binary.AppendUvarint(out, uint64(len(errStr)))
		out = append(out, errStr...)
		out = binary.AppendUvarint(out, uint64(version))
		out = appendFloats(out, params)
		out = finishFrame(out)
		f.buf = out
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// Close stops the listener, closes live connections and waits for handlers.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.srv.Close() // wake any pulls blocked inside handlers
	t.wg.Wait()
	return err
}

// tcpConn is the client side of the TCP transport. Requests on one
// connection are serialized: a PS client issues one RPC at a time.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	f    *frame // nil after Close
}

// DialServer connects to a TCPServer.
func DialServer(addr string) (ServerConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psys: dial %s: %w", addr, err)
	}
	return &tcpConn{conn: conn, f: framePool.Get().(*frame)}, nil
}

// roundTrip sends one request and returns the response payload, which is
// only valid until the next call. Caller holds c.mu.
func (c *tcpConn) roundTrip(op byte, block, minVersion int, grad []float64) ([]byte, error) {
	if c.f == nil {
		return nil, ErrClosed
	}
	out := beginFrame(c.f.buf)
	out = append(out, op)
	out = binary.AppendUvarint(out, uint64(block))
	out = binary.AppendUvarint(out, uint64(minVersion))
	out = appendFloats(out, grad)
	out = finishFrame(out)
	c.f.buf = out
	if _, err := c.conn.Write(out); err != nil {
		return nil, fmt.Errorf("psys: send: %w", err)
	}
	payload, err := readFrame(c.conn, c.f.buf)
	c.f.buf = payload
	if err != nil {
		return nil, fmt.Errorf("psys: recv: %w", err)
	}
	return payload, nil
}

// parseResponse decodes a response payload; params are appended into dst's
// backing array (nil dst allocates fresh).
func parseResponse(b []byte, dst []float64) ([]float64, int, error) {
	elen, b, err := parseUvarint(b)
	if err != nil {
		return dst, 0, err
	}
	if uint64(len(b)) < elen {
		return dst, 0, errFrameCorrupt
	}
	if elen > 0 {
		return dst, 0, errors.New(string(b[:elen]))
	}
	version, b, err := parseUvarint(b)
	if err != nil {
		return dst, 0, err
	}
	params, _, err := parseFloats(b, dst)
	if err != nil {
		return dst, 0, err
	}
	return params, int(version), nil
}

func (c *tcpConn) Push(blockID int, grad []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, err := c.roundTrip(opPush, blockID, 0, grad)
	if err != nil {
		return err
	}
	_, _, err = parseResponse(payload, nil)
	return err
}

func (c *tcpConn) Pull(blockID int, minVersion int) ([]float64, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, err := c.roundTrip(opGet, blockID, minVersion, nil)
	if err != nil {
		return nil, 0, err
	}
	return parseResponse(payload, nil)
}

// PullInto implements the blockPuller fast path: parameters land in dst's
// backing array instead of a fresh allocation.
func (c *tcpConn) PullInto(blockID, minVersion int, dst []float64) ([]float64, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, err := c.roundTrip(opGet, blockID, minVersion, nil)
	if err != nil {
		return dst, 0, err
	}
	return parseResponse(payload, dst)
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		framePool.Put(c.f)
		c.f = nil
	}
	return c.conn.Close()
}

package psys

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// The TCP transport serializes push/pull as gob-encoded request/response
// pairs over a persistent connection — the shape of a real PS data plane
// (one connection per worker-server pair, §3.2's "handling TCP connections"
// overhead made concrete).

type wireRequest struct {
	Op         byte // 'p' = push, 'g' = pull (get)
	Block      int
	MinVersion int
	Grad       []float64
}

type wireResponse struct {
	Params  []float64
	Version int
	Err     string
}

// TCPServer exposes a Server over a TCP listener.
type TCPServer struct {
	srv *Server
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ServeTCP starts serving srv on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns immediately; the listener address is available via
// Addr.
func ServeTCP(srv *Server, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psys: listen: %w", err)
	}
	t := &TCPServer{srv: srv, ln: ln, conns: make(map[net.Conn]struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // client went away
		}
		var resp wireResponse
		switch req.Op {
		case 'p':
			if err := t.srv.Push(req.Block, req.Grad); err != nil {
				resp.Err = err.Error()
			}
		case 'g':
			params, version, err := t.srv.Pull(req.Block, req.MinVersion)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Params = params
				resp.Version = version
			}
		default:
			resp.Err = fmt.Sprintf("psys: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the listener, closes live connections and waits for handlers.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.srv.Close() // wake any pulls blocked inside handlers
	t.wg.Wait()
	return err
}

// tcpConn is the client side of the TCP transport. Requests on one
// connection are serialized: a PS client issues one RPC at a time.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialServer connects to a TCPServer.
func DialServer(addr string) (ServerConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psys: dial %s: %w", addr, err)
	}
	return &tcpConn{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}, nil
}

func (c *tcpConn) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return wireResponse{}, fmt.Errorf("psys: send: %w", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return wireResponse{}, fmt.Errorf("psys: recv: %w", err)
	}
	if resp.Err != "" {
		return wireResponse{}, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *tcpConn) Push(blockID int, grad []float64) error {
	_, err := c.roundTrip(wireRequest{Op: 'p', Block: blockID, Grad: grad})
	return err
}

func (c *tcpConn) Pull(blockID int, minVersion int) ([]float64, int, error) {
	resp, err := c.roundTrip(wireRequest{Op: 'g', Block: blockID, MinVersion: minVersion})
	if err != nil {
		return nil, 0, err
	}
	return resp.Params, resp.Version, nil
}

func (c *tcpConn) Close() error { return c.conn.Close() }

package psys

import (
	"fmt"
	"sync"
)

// SSPCoordinator implements bounded-staleness (stale-synchronous-parallel)
// training — the middle ground between the paper's two modes (§2.2): fully
// synchronous training pays a barrier every step, fully asynchronous training
// risks unbounded parameter staleness ("parameter staleness may lead to
// unstable training progress", §5.2). Under SSP a worker at round r may only
// proceed while the slowest worker is at round ≥ r − slack.
//
// The coordinator is transport-independent: workers call Advance after each
// completed step and block until the staleness bound allows the next one.
type SSPCoordinator struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slack  int
	rounds map[int]int // worker ID → completed rounds
	closed bool
}

// NewSSPCoordinator creates a coordinator with the given slack (0 = fully
// synchronous behaviour, large = effectively asynchronous) for the given
// worker IDs.
func NewSSPCoordinator(slack int, workerIDs []int) (*SSPCoordinator, error) {
	if slack < 0 {
		return nil, fmt.Errorf("psys: negative slack %d", slack)
	}
	if len(workerIDs) == 0 {
		return nil, fmt.Errorf("psys: no workers")
	}
	c := &SSPCoordinator{slack: slack, rounds: make(map[int]int, len(workerIDs))}
	for _, id := range workerIDs {
		if _, dup := c.rounds[id]; dup {
			return nil, fmt.Errorf("psys: duplicate worker %d", id)
		}
		c.rounds[id] = 0
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Advance records that the worker finished one round and blocks until the
// worker may start the next one (i.e. until slowest ≥ myRounds − slack). It
// returns ErrClosed if the coordinator shuts down while waiting.
func (c *SSPCoordinator) Advance(workerID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rounds[workerID]; !ok {
		return fmt.Errorf("psys: unknown worker %d", workerID)
	}
	c.rounds[workerID]++
	c.cond.Broadcast()
	for !c.closed && c.rounds[workerID]-c.slowestLocked() > c.slack {
		c.cond.Wait()
	}
	if c.closed {
		return ErrClosed
	}
	return nil
}

// Staleness reports the current spread between the fastest and slowest
// worker.
func (c *SSPCoordinator) Staleness() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	fastest, slowest := 0, int(^uint(0)>>1)
	for _, r := range c.rounds {
		if r > fastest {
			fastest = r
		}
		if r < slowest {
			slowest = r
		}
	}
	return fastest - slowest
}

// Remove drops a worker from the staleness computation (straggler
// replacement or scale-in), waking anyone blocked on it.
func (c *SSPCoordinator) Remove(workerID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.rounds, workerID)
	c.cond.Broadcast()
}

// Close unblocks all waiters with ErrClosed.
func (c *SSPCoordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
}

func (c *SSPCoordinator) slowestLocked() int {
	slowest := int(^uint(0) >> 1)
	for _, r := range c.rounds {
		if r < slowest {
			slowest = r
		}
	}
	if len(c.rounds) == 0 {
		return 0
	}
	return slowest
}

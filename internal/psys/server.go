package psys

import (
	"errors"
	"fmt"
	"sync"

	"optimus/internal/speedfit"
)

// ErrClosed is returned by operations on a stopped server.
var ErrClosed = errors.New("psys: server closed")

// BlockLayout describes how the parameter vector is split into blocks: block
// i covers params[Offsets[i] : Offsets[i]+Sizes[i]].
type BlockLayout struct {
	Sizes   []int
	Offsets []int
}

// NewBlockLayout builds a layout from block sizes.
func NewBlockLayout(sizes []int) (BlockLayout, error) {
	if len(sizes) == 0 {
		return BlockLayout{}, errors.New("psys: no blocks")
	}
	l := BlockLayout{Sizes: append([]int(nil), sizes...), Offsets: make([]int, len(sizes))}
	off := 0
	for i, s := range sizes {
		if s <= 0 {
			return BlockLayout{}, fmt.Errorf("psys: invalid block size %d", s)
		}
		l.Offsets[i] = off
		off += s
	}
	return l, nil
}

// Dim is the total parameter count.
func (l BlockLayout) Dim() int {
	n := len(l.Sizes)
	if n == 0 {
		return 0
	}
	return l.Offsets[n-1] + l.Sizes[n-1]
}

// EvenLayout splits dim parameters into nBlocks roughly equal blocks.
func EvenLayout(dim, nBlocks int) (BlockLayout, error) {
	if dim <= 0 || nBlocks <= 0 {
		return BlockLayout{}, fmt.Errorf("psys: invalid layout %d/%d", dim, nBlocks)
	}
	if nBlocks > dim {
		nBlocks = dim
	}
	sizes := make([]int, nBlocks)
	base, rem := dim/nBlocks, dim%nBlocks
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return NewBlockLayout(sizes)
}

// blockState is one parameter block hosted by a server.
type blockState struct {
	params   []float64
	accum    []float64 // gradient accumulator (sync mode)
	velocity []float64 // momentum state (lazily allocated)
	pushes   int       // pushes received this round (sync mode)
	version  int       // completed update rounds
}

// Server is one parameter server: it hosts a subset of the model's blocks
// and applies SGD updates to them. In synchronous mode a block's round
// completes when all expected workers have pushed, at which point the
// aggregated gradient is applied and the block version advances; Pull can
// wait for a minimum version, which is what synchronizes the workers. In
// asynchronous mode every push is applied immediately (§2.2).
type Server struct {
	mu   sync.Mutex
	cond *sync.Cond
	mode speedfit.Mode
	lr   float64
	// momentum is the SGD momentum coefficient μ (0 = plain SGD): the PS
	// applies v ← μ·v + g, θ ← θ − lr·v, one of the "some optimization
	// algorithm" choices §2.2 allows the servers.
	momentum float64
	workers  int
	blocks   map[int]*blockState
	closed   bool
}

// NewServer creates a server for the given mode, learning rate and expected
// worker count (the sync barrier width; ignored for async).
func NewServer(mode speedfit.Mode, lr float64, workers int) (*Server, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("psys: invalid learning rate %g", lr)
	}
	if workers <= 0 {
		return nil, fmt.Errorf("psys: invalid worker count %d", workers)
	}
	s := &Server{
		mode:    mode,
		lr:      lr,
		workers: workers,
		blocks:  make(map[int]*blockState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Host installs a block with initial parameter values (copied).
func (s *Server) Host(blockID int, initial []float64) error {
	if len(initial) == 0 {
		return fmt.Errorf("psys: empty block %d", blockID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.blocks[blockID]; dup {
		return fmt.Errorf("psys: block %d already hosted", blockID)
	}
	s.blocks[blockID] = &blockState{
		params: append([]float64(nil), initial...),
		accum:  make([]float64, len(initial)),
	}
	return nil
}

// Push delivers one worker's gradient for a block. Sync mode accumulates and
// applies the averaged gradient once all workers have pushed; async applies
// immediately.
func (s *Server) Push(blockID int, grad []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	b, ok := s.blocks[blockID]
	if !ok {
		return fmt.Errorf("psys: block %d not hosted here", blockID)
	}
	if len(grad) != len(b.params) {
		return fmt.Errorf("psys: block %d gradient size %d, want %d",
			blockID, len(grad), len(b.params))
	}
	if s.mode == speedfit.Async {
		s.applyLocked(b, grad, 1)
		b.version++
		s.cond.Broadcast()
		return nil
	}
	for i, g := range grad {
		b.accum[i] += g
	}
	b.pushes++
	if b.pushes >= s.workers {
		s.applyLocked(b, b.accum, 1/float64(s.workers))
		for i := range b.accum {
			b.accum[i] = 0
		}
		b.pushes = 0
		b.version++
		s.cond.Broadcast()
	}
	return nil
}

// Pull returns a copy of the block's parameters once its version is at least
// minVersion (the sync barrier; pass 0 to read immediately). It unblocks
// with ErrClosed when the server stops.
func (s *Server) Pull(blockID int, minVersion int) ([]float64, int, error) {
	return s.PullInto(blockID, minVersion, nil)
}

// PullInto is Pull with a caller-provided buffer: the parameters are appended
// into dst's backing array (dst may be nil), so a steady-state caller that
// feeds the previous result back in pulls without allocating. The returned
// slice is caller-owned until the next reuse of the same buffer.
func (s *Server) PullInto(blockID, minVersion int, dst []float64) ([]float64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[blockID]
	if !ok {
		return dst, 0, fmt.Errorf("psys: block %d not hosted here", blockID)
	}
	for b.version < minVersion && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return dst, 0, ErrClosed
	}
	return append(dst[:0], b.params...), b.version, nil
}

// SetMomentum sets the SGD momentum coefficient in [0, 1). It must be
// called before training starts.
func (s *Server) SetMomentum(mu float64) error {
	if mu < 0 || mu >= 1 {
		return fmt.Errorf("psys: invalid momentum %g", mu)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.momentum = mu
	return nil
}

// applyLocked performs one SGD(+momentum) update on a block with the given
// (averaged) gradient. Caller holds s.mu.
func (s *Server) applyLocked(b *blockState, grad []float64, scale float64) {
	if s.momentum > 0 && b.velocity == nil {
		b.velocity = make([]float64, len(b.params))
	}
	for i := range b.params {
		g := grad[i] * scale
		if s.momentum > 0 {
			b.velocity[i] = s.momentum*b.velocity[i] + g
			g = b.velocity[i]
		}
		b.params[i] -= s.lr * g
	}
}

// SetWorkers adjusts the sync barrier width, used by elastic scaling. Any
// partially accumulated round is preserved; if the new width is already
// satisfied the round completes immediately.
func (s *Server) SetWorkers(workers int) error {
	if workers <= 0 {
		return fmt.Errorf("psys: invalid worker count %d", workers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.workers = workers
	if s.mode == speedfit.Sync {
		for _, b := range s.blocks {
			if b.pushes >= s.workers {
				s.applyLocked(b, b.accum, 1/float64(s.workers))
				for i := range b.accum {
					b.accum[i] = 0
				}
				b.pushes = 0
				b.version++
			}
		}
		s.cond.Broadcast()
	}
	return nil
}

// Blocks returns the sorted IDs this server hosts.
func (s *Server) Blocks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	sortInts(out)
	return out
}

// Close stops the server, waking all blocked pulls.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

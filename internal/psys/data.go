package psys

import (
	"fmt"
	"sync"
)

// ChunkStore is the §5.1 data-serving layer: the training set is divided
// into fixed-size chunks (128 MB in HDFS; example counts here), chunks are
// assigned to workers round-robin so workloads balance, and reassigned when
// the worker count changes under elastic scaling.
type ChunkStore struct {
	mu        sync.RWMutex
	data      Batch
	chunkSize int
	chunks    [][2]int      // [start, end) example ranges
	owner     map[int][]int // workerID → chunk indices
	workerIDs []int         // current assignment order
}

// NewChunkStore splits the dataset into chunks of chunkSize examples.
func NewChunkStore(data Batch, chunkSize int) (*ChunkStore, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("psys: empty dataset")
	}
	if len(data.X) != len(data.Y) {
		return nil, fmt.Errorf("psys: X/Y length mismatch: %d vs %d", len(data.X), len(data.Y))
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("psys: invalid chunk size %d", chunkSize)
	}
	cs := &ChunkStore{
		data:      data,
		chunkSize: chunkSize,
		owner:     make(map[int][]int),
	}
	for start := 0; start < data.Len(); start += chunkSize {
		end := start + chunkSize
		if end > data.Len() {
			end = data.Len()
		}
		cs.chunks = append(cs.chunks, [2]int{start, end})
	}
	return cs, nil
}

// NumChunks reports the chunk count.
func (cs *ChunkStore) NumChunks() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return len(cs.chunks)
}

// Assign distributes all chunks round-robin over the given worker IDs,
// replacing any previous assignment (§5.1: "assign a roughly equal number of
// chunks to each worker in a round-robin manner... when the number of
// workers changes we reassign the data chunks").
func (cs *ChunkStore) Assign(workerIDs []int) error {
	if len(workerIDs) == 0 {
		return fmt.Errorf("psys: no workers to assign chunks to")
	}
	seen := make(map[int]bool, len(workerIDs))
	for _, id := range workerIDs {
		if seen[id] {
			return fmt.Errorf("psys: duplicate worker id %d", id)
		}
		seen[id] = true
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.owner = make(map[int][]int, len(workerIDs))
	cs.workerIDs = append([]int(nil), workerIDs...)
	for i := range cs.chunks {
		w := workerIDs[i%len(workerIDs)]
		cs.owner[w] = append(cs.owner[w], i)
	}
	return nil
}

// ChunksOf returns the chunk indices assigned to a worker.
func (cs *ChunkStore) ChunksOf(workerID int) []int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return append([]int(nil), cs.owner[workerID]...)
}

// Shard materializes a worker's assigned examples as one Batch. The returned
// slices alias the store's underlying data; callers must not mutate them.
func (cs *ChunkStore) Shard(workerID int) Batch {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	var out Batch
	for _, ci := range cs.owner[workerID] {
		r := cs.chunks[ci]
		out.X = append(out.X, cs.data.X[r[0]:r[1]]...)
		out.Y = append(out.Y, cs.data.Y[r[0]:r[1]]...)
	}
	return out
}

// Imbalance returns the difference between the largest and smallest number
// of examples assigned to any worker — the §5.1 balance criterion.
func (cs *ChunkStore) Imbalance() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if len(cs.workerIDs) == 0 {
		return 0
	}
	lo, hi := -1, 0
	for _, w := range cs.workerIDs {
		n := 0
		for _, ci := range cs.owner[w] {
			r := cs.chunks[ci]
			n += r[1] - r[0]
		}
		if lo < 0 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	return hi - lo
}

// shardCursor cycles mini-batches out of a worker's shard deterministically.
type shardCursor struct {
	shard Batch
	pos   int
}

// next returns the following mini-batch of up to m examples, wrapping
// around at the end of the shard (one wrap = one local epoch).
func (c *shardCursor) next(m int) Batch {
	n := c.shard.Len()
	if n == 0 || m <= 0 {
		return Batch{}
	}
	if m > n {
		m = n
	}
	var out Batch
	for i := 0; i < m; i++ {
		idx := (c.pos + i) % n
		out.X = append(out.X, c.shard.X[idx])
		out.Y = append(out.Y, c.shard.Y[idx])
	}
	c.pos = (c.pos + m) % n
	return out
}

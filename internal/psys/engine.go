package psys

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"optimus/internal/speedfit"
)

// AssignStrategy selects the block→server distribution algorithm (§5.3).
type AssignStrategy string

const (
	// AssignPAA uses the paper's Parameter Assignment Algorithm.
	AssignPAA AssignStrategy = "paa"
	// AssignMXNet uses MXNet's default threshold heuristic.
	AssignMXNet AssignStrategy = "mxnet"
)

// TransportKind selects the worker↔server data plane.
type TransportKind string

const (
	// TransportLocal uses direct in-process calls.
	TransportLocal TransportKind = "local"
	// TransportTCP runs each server behind a TCP listener with gob framing.
	TransportTCP TransportKind = "tcp"
)

// JobConfig describes one training job.
type JobConfig struct {
	Model     Model
	Data      Batch
	Mode      speedfit.Mode
	Workers   int
	Servers   int
	BatchSize int
	LR        float64
	// Momentum is the servers' SGD momentum coefficient in [0, 1).
	Momentum float64
	// BlockSizes partitions the parameter vector; empty means an even split
	// into 2·Servers blocks.
	BlockSizes []int
	Assignment AssignStrategy // default AssignPAA
	Transport  TransportKind  // default TransportLocal
	ChunkSize  int            // §5.1 chunk granularity; 0 → dataset/4·workers
	Seed       int64
	// InitParams seeds the parameter vector (used by checkpoint restore);
	// nil means small random initialization.
	InitParams []float64
	// WorkerDelays injects per-worker artificial step delays by worker ID
	// (straggler experiments).
	WorkerDelays map[int]time.Duration
}

func (c *JobConfig) validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("psys: no model")
	case c.Data.Len() == 0:
		return fmt.Errorf("psys: no data")
	case c.Workers <= 0:
		return fmt.Errorf("psys: invalid worker count %d", c.Workers)
	case c.Servers <= 0:
		return fmt.Errorf("psys: invalid server count %d", c.Servers)
	case c.BatchSize <= 0:
		return fmt.Errorf("psys: invalid batch size %d", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("psys: invalid learning rate %g", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("psys: invalid momentum %g", c.Momentum)
	case c.InitParams != nil && len(c.InitParams) != c.Model.Dim():
		return fmt.Errorf("psys: init params dim %d, model dim %d",
			len(c.InitParams), c.Model.Dim())
	}
	return nil
}

// StepStat is one worker-step measurement.
type StepStat struct {
	Worker   int
	Step     int
	Loss     float64
	Duration time.Duration // wall time including barrier waits
	Compute  time.Duration // gradient-production time only (§5.2 signal)
}

// Job is a running training job: servers, workers and the data layer.
type Job struct {
	cfg     JobConfig
	layout  BlockLayout
	owner   []int // block → server index
	servers []*Server
	tcp     []*TCPServer
	workers []*Worker
	chunks  *ChunkStore

	mu       sync.Mutex
	stopped  bool
	rounds   int  // completed RunSteps rounds across the job's lifetime
	ckptFail bool // next SaveCheckpoint fails (armed by FailNextCheckpoint)
}

// StartJob builds and wires up a job: parameter layout, §5.3 block
// assignment, servers, transports, §5.1 chunk assignment and workers.
func StartJob(cfg JobConfig) (*Job, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Assignment == "" {
		cfg.Assignment = AssignPAA
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportLocal
	}

	dim := cfg.Model.Dim()
	var layout BlockLayout
	var err error
	if len(cfg.BlockSizes) > 0 {
		layout, err = NewBlockLayout(cfg.BlockSizes)
		if err == nil && layout.Dim() != dim {
			err = fmt.Errorf("psys: blocks sum to %d, model dim %d", layout.Dim(), dim)
		}
	} else {
		layout, err = EvenLayout(dim, 2*cfg.Servers)
	}
	if err != nil {
		return nil, err
	}

	// §5.3: distribute blocks over servers. Unlike the offline psassign
	// study, a live block cannot be sliced across processes, so ownership is
	// decided at block granularity with the same greedy rules.
	if cfg.Assignment != AssignPAA && cfg.Assignment != AssignMXNet {
		return nil, fmt.Errorf("psys: unknown assignment %q", cfg.Assignment)
	}
	sizes64 := make([]int64, len(layout.Sizes))
	for i, s := range layout.Sizes {
		sizes64[i] = int64(s)
	}
	owner := assignOwners(sizes64, cfg.Servers, cfg.Assignment, cfg.Seed)

	// Initial parameters.
	init := cfg.InitParams
	if init == nil {
		r := rand.New(rand.NewSource(cfg.Seed + 101))
		init = make([]float64, dim)
		for i := range init {
			init[i] = r.NormFloat64() * 0.01
		}
	}

	j := &Job{cfg: cfg, layout: layout, owner: owner}

	// Servers host their blocks.
	for s := 0; s < cfg.Servers; s++ {
		srv, err := NewServer(cfg.Mode, cfg.LR, cfg.Workers)
		if err != nil {
			return nil, err
		}
		if cfg.Momentum > 0 {
			if err := srv.SetMomentum(cfg.Momentum); err != nil {
				return nil, err
			}
		}
		j.servers = append(j.servers, srv)
	}
	for b, off := range layout.Offsets {
		if err := j.servers[owner[b]].Host(b, init[off:off+layout.Sizes[b]]); err != nil {
			j.Stop()
			return nil, err
		}
	}

	// Transports.
	dial := func(s int) (ServerConn, error) { return LocalConn(j.servers[s]), nil }
	if cfg.Transport == TransportTCP {
		for _, srv := range j.servers {
			ts, err := ServeTCP(srv, "127.0.0.1:0")
			if err != nil {
				j.Stop()
				return nil, err
			}
			j.tcp = append(j.tcp, ts)
		}
		dial = func(s int) (ServerConn, error) { return DialServer(j.tcp[s].Addr()) }
	}

	// §5.1 data chunks.
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = cfg.Data.Len() / (4 * cfg.Workers)
		if chunkSize < 1 {
			chunkSize = 1
		}
	}
	j.chunks, err = NewChunkStore(cfg.Data, chunkSize)
	if err != nil {
		j.Stop()
		return nil, err
	}
	ids := make([]int, cfg.Workers)
	for i := range ids {
		ids[i] = i
	}
	if err := j.chunks.Assign(ids); err != nil {
		j.Stop()
		return nil, err
	}

	// Workers.
	for i := 0; i < cfg.Workers; i++ {
		conns := make([]ServerConn, cfg.Servers)
		for s := range conns {
			c, err := dial(s)
			if err != nil {
				j.Stop()
				return nil, err
			}
			conns[s] = c
		}
		w := newWorker(i, cfg.Model, layout, owner, conns, j.chunks.Shard(i),
			cfg.BatchSize, cfg.Mode == speedfit.Sync)
		if d, ok := cfg.WorkerDelays[i]; ok {
			w.SetDelay(d)
		}
		j.workers = append(j.workers, w)
	}
	return j, nil
}

// assignOwners maps each block to a server using the selected strategy. The
// psassign algorithms report aggregate loads; here we need the actual
// per-block ownership, so we re-run the same greedy rules at block
// granularity (without slicing: a block lives on exactly one server, since
// a live parameter block cannot be split across processes mid-training).
func assignOwners(sizes []int64, servers int, strategy AssignStrategy, seed int64) []int {
	owner := make([]int, len(sizes))
	load := make([]int64, servers)
	switch strategy {
	case AssignMXNet:
		r := rand.New(rand.NewSource(seed))
		for b := range sizes {
			owner[b] = r.Intn(servers)
			load[owner[b]] += sizes[b]
		}
	default: // PAA-style: largest block to least-loaded server
		order := make([]int, len(sizes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return sizes[order[i]] > sizes[order[j]] })
		for _, b := range order {
			best := 0
			for s := 1; s < servers; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			owner[b] = best
			load[best] += sizes[b]
		}
	}
	return owner
}

// RunSteps drives every worker for n steps concurrently and returns the
// per-step measurements. In sync mode the server-side version barrier keeps
// the workers in lockstep; in async mode they free-run.
func (j *Job) RunSteps(n int) ([]StepStat, error) {
	if n <= 0 {
		return nil, fmt.Errorf("psys: invalid step count %d", n)
	}
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	j.mu.Unlock()

	stats := make([][]StepStat, len(j.workers))
	errs := make([]error, len(j.workers))
	var wg sync.WaitGroup
	for i, w := range j.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			for s := 0; s < n; s++ {
				start := time.Now()
				loss, err := w.Step()
				if err != nil {
					errs[i] = err
					return
				}
				stats[i] = append(stats[i], StepStat{
					Worker:   w.ID,
					Step:     w.Round(),
					Loss:     loss,
					Duration: time.Since(start),
					Compute:  w.lastCompute,
				})
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []StepStat
	for _, s := range stats {
		out = append(out, s...)
	}
	j.mu.Lock()
	j.rounds += n
	j.mu.Unlock()
	return out, nil
}

// Params gathers the full parameter vector from the servers.
func (j *Job) Params() ([]float64, error) {
	out := make([]float64, j.layout.Dim())
	for b, off := range j.layout.Offsets {
		params, _, err := j.servers[j.owner[b]].Pull(b, 0)
		if err != nil {
			return nil, err
		}
		copy(out[off:off+j.layout.Sizes[b]], params)
	}
	return out, nil
}

// Loss evaluates the model's current loss on the full dataset.
func (j *Job) Loss() (float64, error) {
	params, err := j.Params()
	if err != nil {
		return 0, err
	}
	return j.cfg.Model.Loss(params, j.cfg.Data), nil
}

// Rounds returns the number of steps each worker has been driven through.
func (j *Job) Rounds() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rounds
}

// Workers returns the current worker count.
func (j *Job) Workers() int { return len(j.workers) }

// Servers returns the current server count.
func (j *Job) Servers() int { return len(j.servers) }

// ChunkImbalance exposes the §5.1 data balance metric.
func (j *Job) ChunkImbalance() int { return j.chunks.Imbalance() }

// DetectStragglers applies the §5.2 rule to a measurement batch: a worker
// whose mean step speed falls below half the median speed is a straggler.
// For synchronous jobs the barrier equalizes wall durations, so — like the
// paper, which watches gradient arrival times on the servers — detection
// uses each worker's gradient-production time when available.
func DetectStragglers(stats []StepStat) []int {
	durs := make(map[int][]time.Duration)
	for _, s := range stats {
		d := s.Compute
		if d <= 0 {
			d = s.Duration
		}
		durs[s.Worker] = append(durs[s.Worker], d)
	}
	if len(durs) == 0 {
		return nil
	}
	speed := make(map[int]float64, len(durs))
	var speeds []float64
	for w, ds := range durs {
		// Per-worker median resists one-off scheduling/GC hiccups that
		// would otherwise flag healthy workers.
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		med := ds[len(ds)/2]
		if med <= 0 {
			med = time.Nanosecond
		}
		v := 1 / med.Seconds()
		speed[w] = v
		speeds = append(speeds, v)
	}
	sort.Float64s(speeds)
	median := speeds[len(speeds)/2]
	var out []int
	for w, v := range speed {
		if v < 0.5*median {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// InjectWorkerDelay degrades one worker's step time in place — the chaos
// straggler fault against a live job. Safe while RunSteps is in flight.
func (j *Job) InjectWorkerDelay(id int, d time.Duration) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, w := range j.workers {
		if w.ID == id {
			w.SetDelay(d)
			return nil
		}
	}
	return fmt.Errorf("psys: no worker %d", id)
}

// FailNextCheckpoint arms a one-shot checkpoint-write failure: the next
// SaveCheckpoint returns ErrCheckpointFailed without touching the file (the
// chaos stand-in for a failed HDFS write, §5.4).
func (j *Job) FailNextCheckpoint() {
	j.mu.Lock()
	j.ckptFail = true
	j.mu.Unlock()
}

// ReplaceWorker implements §5.2's remediation: the straggler is torn down
// and a fresh worker (same ID, same shard, no injected delay) takes over at
// the same training round. Must not be called while RunSteps is in flight.
func (j *Job) ReplaceWorker(id int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, w := range j.workers {
		if w.ID != id {
			continue
		}
		round := w.round
		w.closeConns()
		conns := make([]ServerConn, len(j.servers))
		for s := range conns {
			if len(j.tcp) > 0 {
				c, err := DialServer(j.tcp[s].Addr())
				if err != nil {
					return err
				}
				conns[s] = c
			} else {
				conns[s] = LocalConn(j.servers[s])
			}
		}
		nw := newWorker(id, j.cfg.Model, j.layout, j.owner, conns,
			j.chunks.Shard(id), j.cfg.BatchSize, j.cfg.Mode == speedfit.Sync)
		nw.round = round
		j.workers[i] = nw
		return nil
	}
	return fmt.Errorf("psys: no worker %d", id)
}

// Stop tears the job down: workers' connections, TCP listeners, servers.
func (j *Job) Stop() {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return
	}
	j.stopped = true
	j.mu.Unlock()
	for _, w := range j.workers {
		w.closeConns()
	}
	for _, t := range j.tcp {
		_ = t.Close() // closes the underlying server too
	}
	for _, s := range j.servers {
		s.Close()
	}
}

package psys

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Worker is one training task: it owns a data shard, pulls the latest
// parameters from the servers, computes a gradient on its next mini-batch
// and pushes it back (§2.2's worker loop).
type Worker struct {
	ID     int
	model  Model
	layout BlockLayout
	owner  []int        // block → index into conns
	conns  []ServerConn // one per server
	cursor shardCursor
	batch  int
	sync   bool
	round  int

	// delayNS injects artificial per-step slowness, used to create stragglers
	// in tests, demos and chaos runs (§5.2). Atomic so a fault injector can
	// degrade a worker while RunSteps is in flight.
	delayNS atomic.Int64

	params  []float64
	grad    []float64
	pullBuf []float64 // reused by the blockPuller fast path in Step

	lastCompute time.Duration // gradient-production time of the last step
}

func newWorker(id int, model Model, layout BlockLayout, owner []int,
	conns []ServerConn, shard Batch, batch int, syncMode bool) *Worker {
	return &Worker{
		ID:     id,
		model:  model,
		layout: layout,
		owner:  owner,
		conns:  conns,
		cursor: shardCursor{shard: shard},
		batch:  batch,
		sync:   syncMode,
		params: make([]float64, layout.Dim()),
		grad:   make([]float64, layout.Dim()),
	}
}

// Round returns the number of completed steps (sync rounds).
func (w *Worker) Round() int { return w.round }

// SetDelay sets the injected per-step slowness; safe during RunSteps.
func (w *Worker) SetDelay(d time.Duration) { w.delayNS.Store(int64(d)) }

// Delay returns the currently injected per-step slowness.
func (w *Worker) Delay() time.Duration { return time.Duration(w.delayNS.Load()) }

// Step executes one training step and returns the mini-batch loss measured
// before the update (the quantity fed to the §3.1 convergence fitter).
func (w *Worker) Step() (float64, error) {
	delay := w.Delay()
	if delay > 0 {
		time.Sleep(delay)
	}
	minVersion := 0
	if w.sync {
		minVersion = w.round
	}
	// Pull all blocks into the local parameter copy, reusing one pull buffer
	// across blocks and steps when the transport supports it.
	for b, off := range w.layout.Offsets {
		conn := w.conns[w.owner[b]]
		var params []float64
		var err error
		if bp, ok := conn.(blockPuller); ok {
			params, _, err = bp.PullInto(b, minVersion, w.pullBuf)
			if err == nil {
				w.pullBuf = params
			}
		} else {
			params, _, err = conn.Pull(b, minVersion)
		}
		if err != nil {
			return 0, fmt.Errorf("psys: worker %d pull block %d: %w", w.ID, b, err)
		}
		if len(params) != w.layout.Sizes[b] {
			return 0, fmt.Errorf("psys: worker %d block %d size %d, want %d",
				w.ID, b, len(params), w.layout.Sizes[b])
		}
		copy(w.params[off:off+w.layout.Sizes[b]], params)
	}

	batch := w.cursor.next(w.batch)
	if batch.Len() == 0 {
		return 0, fmt.Errorf("psys: worker %d has no data", w.ID)
	}
	computeStart := time.Now()
	loss := w.model.Loss(w.params, batch)
	w.model.Gradient(w.params, w.grad, batch)
	w.lastCompute = time.Since(computeStart)
	if delay > 0 {
		// Injected slowness is part of the worker's own work, so it counts
		// toward compute time (that is what §5.2's detector must see even
		// under synchronous barriers).
		w.lastCompute += delay
	}

	for b, off := range w.layout.Offsets {
		if err := w.conns[w.owner[b]].Push(b, w.grad[off:off+w.layout.Sizes[b]]); err != nil {
			return 0, fmt.Errorf("psys: worker %d push block %d: %w", w.ID, b, err)
		}
	}
	w.round++
	return loss, nil
}

// closeConns releases the worker's connections.
func (w *Worker) closeConns() {
	for _, c := range w.conns {
		_ = c.Close() // best-effort teardown
	}
}

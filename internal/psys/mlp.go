package psys

import (
	"fmt"
	"math"
)

// MLP is a one-hidden-layer neural network with tanh activation and squared
// loss — a genuinely non-convex objective whose SGD loss curve follows the
// O(1/k) trend the §3.1 model fits, unlike the convex surrogates. Parameters
// are packed as [W1 (Hidden×In) | b1 (Hidden) | W2 (Hidden) | b2 (1)], which
// gives the parameter vector the multi-block structure the §5.3 assignment
// algorithms care about.
type MLP struct {
	In     int // input features
	Hidden int // hidden units
}

// Dim implements Model.
func (m MLP) Dim() int { return m.Hidden*m.In + m.Hidden + m.Hidden + 1 }

// Name implements Model.
func (m MLP) Name() string { return fmt.Sprintf("mlp-%dx%d", m.In, m.Hidden) }

// BlockSizes returns the natural per-layer parameter blocks (W1, b1, W2,
// b2), mirroring how DL frameworks register one block per layer tensor.
func (m MLP) BlockSizes() []int {
	return []int{m.Hidden * m.In, m.Hidden, m.Hidden, 1}
}

// unpack returns views into the packed parameter vector.
func (m MLP) unpack(params []float64) (w1, b1, w2 []float64, b2 *float64) {
	o := 0
	w1 = params[o : o+m.Hidden*m.In]
	o += m.Hidden * m.In
	b1 = params[o : o+m.Hidden]
	o += m.Hidden
	w2 = params[o : o+m.Hidden]
	o += m.Hidden
	b2 = &params[o]
	return
}

// forward computes the prediction and hidden activations for one example.
func (m MLP) forward(params, x, hidden []float64) float64 {
	w1, b1, w2, b2 := m.unpack(params)
	for h := 0; h < m.Hidden; h++ {
		s := b1[h]
		row := w1[h*m.In : (h+1)*m.In]
		for j, xj := range x {
			s += row[j] * xj
		}
		hidden[h] = math.Tanh(s)
	}
	out := *b2
	for h, a := range hidden {
		out += w2[h] * a
	}
	return out
}

// Loss implements Model.
func (m MLP) Loss(params []float64, b Batch) float64 {
	if b.Len() == 0 {
		return 0
	}
	hidden := make([]float64, m.Hidden)
	var sum float64
	for i, x := range b.X {
		d := m.forward(params, x, hidden) - b.Y[i]
		sum += d * d
	}
	return sum / (2 * float64(b.Len()))
}

// Gradient implements Model via backpropagation.
func (m MLP) Gradient(params, grad []float64, b Batch) {
	for i := range grad {
		grad[i] = 0
	}
	if b.Len() == 0 {
		return
	}
	w1, _, w2, _ := m.unpack(params)
	gw1, gb1, gw2, gb2 := m.unpack(grad)
	hidden := make([]float64, m.Hidden)
	inv := 1 / float64(b.Len())
	for i, x := range b.X {
		pred := m.forward(params, x, hidden)
		d := (pred - b.Y[i]) * inv
		*gb2 += d
		for h := 0; h < m.Hidden; h++ {
			a := hidden[h]
			gw2[h] += d * a
			// dL/dpre_h = d · w2[h] · (1 − tanh²)
			dh := d * w2[h] * (1 - a*a)
			gb1[h] += dh
			row := gw1[h*m.In : (h+1)*m.In]
			_ = w1
			for j, xj := range x {
				row[j] += dh * xj
			}
		}
	}
}

package psys

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"optimus/internal/speedfit"
)

func regJob(t *testing.T, cfg JobConfig) *Job {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = LinearRegression{Features: 20}
	}
	if cfg.Data.Len() == 0 {
		data, _, err := SyntheticRegression(800, 20, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Data = data
	}
	if cfg.Workers == 0 {
		cfg.Workers = 3
	}
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 0.1
	}
	j, err := StartJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Stop)
	return j
}

func TestJobConfigValidation(t *testing.T) {
	data, _, _ := SyntheticRegression(100, 5, 0, 1)
	bad := []JobConfig{
		{},
		{Model: LinearRegression{Features: 5}},
		{Model: LinearRegression{Features: 5}, Data: data},
		{Model: LinearRegression{Features: 5}, Data: data, Workers: 1},
		{Model: LinearRegression{Features: 5}, Data: data, Workers: 1, Servers: 1},
		{Model: LinearRegression{Features: 5}, Data: data, Workers: 1, Servers: 1, BatchSize: 8},
		{Model: LinearRegression{Features: 5}, Data: data, Workers: 1, Servers: 1,
			BatchSize: 8, LR: 0.1, InitParams: []float64{1}},
	}
	for i, cfg := range bad {
		if _, err := StartJob(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSyncTrainingConverges(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 2})
	before, err := j.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.RunSteps(150); err != nil {
		t.Fatal(err)
	}
	after, err := j.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before*0.2 {
		t.Errorf("loss %g → %g; expected ≥5x reduction", before, after)
	}
}

func TestAsyncTrainingConverges(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Async, Seed: 3})
	before, _ := j.Loss()
	if _, err := j.RunSteps(200); err != nil {
		t.Fatal(err)
	}
	after, _ := j.Loss()
	if after >= before*0.3 {
		t.Errorf("async loss %g → %g; expected big reduction", before, after)
	}
}

func TestLogisticTraining(t *testing.T) {
	data, _, err := SyntheticClassification(600, 10, 0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	j := regJob(t, JobConfig{
		Model: LogisticRegression{Features: 10}, Data: data,
		Mode: speedfit.Sync, LR: 0.5, Seed: 4,
	})
	before, _ := j.Loss()
	if _, err := j.RunSteps(120); err != nil {
		t.Fatal(err)
	}
	after, _ := j.Loss()
	if after >= before {
		t.Errorf("logistic loss %g → %g; expected decrease", before, after)
	}
}

func TestSyncLockstep(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Workers: 4, Seed: 5})
	stats, err := j.RunSteps(25)
	if err != nil {
		t.Fatal(err)
	}
	// Every worker must complete exactly 25 rounds — lockstep.
	counts := make(map[int]int)
	for _, s := range stats {
		counts[s.Worker]++
	}
	for w, c := range counts {
		if c != 25 {
			t.Errorf("worker %d completed %d steps, want 25", w, c)
		}
	}
	for _, w := range j.workers {
		if w.Round() != 25 {
			t.Errorf("worker %d at round %d, want 25", w.ID, w.Round())
		}
	}
}

func TestSyncEquivalentToSequentialSGD(t *testing.T) {
	// With one worker and full-batch steps, sync PS training must match
	// plain gradient descent computed locally.
	data, _, err := SyntheticRegression(64, 8, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	model := LinearRegression{Features: 8}
	init := make([]float64, 8)
	for i := range init {
		init[i] = 0.05 * float64(i)
	}
	j := regJob(t, JobConfig{
		Model: model, Data: data, Mode: speedfit.Sync,
		Workers: 1, Servers: 3, BatchSize: 64, LR: 0.05,
		InitParams: init, Seed: 6, ChunkSize: 64,
	})
	const steps = 10
	if _, err := j.RunSteps(steps); err != nil {
		t.Fatal(err)
	}
	got, err := j.Params()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: local full-batch gradient descent.
	want := append([]float64(nil), init...)
	grad := make([]float64, 8)
	for s := 0; s < steps; s++ {
		model.Gradient(want, grad, data)
		for i := range want {
			want[i] -= 0.05 * grad[i]
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("param %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestTCPTransport(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Transport: TransportTCP, Seed: 7})
	before, _ := j.Loss()
	if _, err := j.RunSteps(60); err != nil {
		t.Fatal(err)
	}
	after, _ := j.Loss()
	if after >= before*0.5 {
		t.Errorf("TCP loss %g → %g; expected reduction", before, after)
	}
}

func TestTCPAndLocalAgree(t *testing.T) {
	data, _, err := SyntheticRegression(256, 12, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr TransportKind) []float64 {
		j := regJob(t, JobConfig{
			Model: LinearRegression{Features: 12}, Data: data,
			Mode: speedfit.Sync, Workers: 2, Servers: 2,
			BatchSize: 16, LR: 0.05, Seed: 8, Transport: tr,
		})
		if _, err := j.RunSteps(20); err != nil {
			t.Fatal(err)
		}
		p, err := j.Params()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	lp, tp := run(TransportLocal), run(TransportTCP)
	for i := range lp {
		if math.Abs(lp[i]-tp[i]) > 1e-9 {
			t.Fatalf("param %d differs: local %g, tcp %g", i, lp[i], tp[i])
		}
	}
}

func TestChunkStore(t *testing.T) {
	data, _, err := SyntheticRegression(103, 4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewChunkStore(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumChunks() != 11 { // 10 full + 1 tail of 3
		t.Errorf("NumChunks = %d, want 11", cs.NumChunks())
	}
	if err := cs.Assign([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 3; w++ {
		total += cs.Shard(w).Len()
	}
	if total != 103 {
		t.Errorf("shards cover %d examples, want 103", total)
	}
	if imb := cs.Imbalance(); imb > 10 {
		t.Errorf("imbalance = %d examples, want ≤ one chunk", imb)
	}
	// Rebalance to more workers (§5.1).
	if err := cs.Assign([]int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if cs.Shard(4).Len() == 0 {
		t.Error("new worker received no data after reassignment")
	}
	if err := cs.Assign(nil); err == nil {
		t.Error("Assign(nil) accepted")
	}
	if err := cs.Assign([]int{1, 1}); err == nil {
		t.Error("duplicate worker IDs accepted")
	}
}

func TestChunkStoreValidation(t *testing.T) {
	if _, err := NewChunkStore(Batch{}, 10); err == nil {
		t.Error("empty dataset accepted")
	}
	data, _, _ := SyntheticRegression(10, 2, 0, 1)
	if _, err := NewChunkStore(data, 0); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewChunkStore(Batch{X: data.X, Y: data.Y[:5]}, 2); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestStragglerDetectionAndReplacement(t *testing.T) {
	j := regJob(t, JobConfig{
		Mode: speedfit.Async, Workers: 4, Seed: 10,
		WorkerDelays: map[int]time.Duration{2: 12 * time.Millisecond},
	})
	stats, err := j.RunSteps(12)
	if err != nil {
		t.Fatal(err)
	}
	stragglers := DetectStragglers(stats)
	if len(stragglers) != 1 || stragglers[0] != 2 {
		t.Fatalf("stragglers = %v, want [2]", stragglers)
	}
	if err := j.ReplaceWorker(2); err != nil {
		t.Fatal(err)
	}
	stats2, err := j.RunSteps(12)
	if err != nil {
		t.Fatal(err)
	}
	if again := DetectStragglers(stats2); len(again) != 0 {
		t.Errorf("straggler persisted after replacement: %v", again)
	}
	if err := j.ReplaceWorker(99); err == nil {
		t.Error("ReplaceWorker accepted unknown id")
	}
}

func TestDetectStragglersEmpty(t *testing.T) {
	if got := DetectStragglers(nil); got != nil {
		t.Errorf("DetectStragglers(nil) = %v", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.gob")
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 11})
	if _, err := j.RunSteps(30); err != nil {
		t.Fatal(err)
	}
	want, err := j.Params()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.ModelName != "linreg" || ck.Rounds != 30 || ck.Dim != 20 {
		t.Errorf("checkpoint header = %+v", ck)
	}
	for i := range want {
		if ck.Params[i] != want[i] {
			t.Fatalf("param %d differs in checkpoint", i)
		}
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("LoadCheckpoint of missing file succeeded")
	}
}

func TestElasticScaleContinuesTraining(t *testing.T) {
	dir := t.TempDir()
	data, _, err := SyntheticRegression(800, 16, 0.01, 12)
	if err != nil {
		t.Fatal(err)
	}
	j, err := StartJob(JobConfig{
		Model: LinearRegression{Features: 16}, Data: data,
		Mode: speedfit.Sync, Workers: 2, Servers: 1,
		BatchSize: 32, LR: 0.1, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.RunSteps(40); err != nil {
		t.Fatal(err)
	}
	midLoss, _ := j.Loss()
	midParams, _ := j.Params()

	// §5.4: checkpoint, stop, restart with 4 workers and 2 servers.
	j2, err := Scale(j, 4, 2, filepath.Join(dir, "scale.gob"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Stop()
	if j2.Workers() != 4 || j2.Servers() != 2 {
		t.Fatalf("scaled job has %dw/%dp, want 4/2", j2.Workers(), j2.Servers())
	}
	if j2.Rounds() != 40 {
		t.Errorf("rounds after scale = %d, want 40", j2.Rounds())
	}
	// Parameters carried over exactly.
	resumed, _ := j2.Params()
	for i := range midParams {
		if resumed[i] != midParams[i] {
			t.Fatalf("param %d changed across scale", i)
		}
	}
	// Training continues to improve.
	if _, err := j2.RunSteps(40); err != nil {
		t.Fatal(err)
	}
	finalLoss, _ := j2.Loss()
	if finalLoss >= midLoss {
		t.Errorf("loss after scale %g not below pre-scale %g", finalLoss, midLoss)
	}
	// Old job is unusable.
	if _, err := j.RunSteps(1); err == nil {
		t.Error("stopped job accepted RunSteps")
	}
}

func TestScaleValidation(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 13})
	if _, err := Scale(j, 0, 1, filepath.Join(t.TempDir(), "x.gob")); err == nil {
		t.Error("Scale accepted zero workers")
	}
}

func TestBlockLayout(t *testing.T) {
	l, err := NewBlockLayout([]int{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Dim() != 10 {
		t.Errorf("Dim = %d", l.Dim())
	}
	if l.Offsets[2] != 8 {
		t.Errorf("Offsets = %v", l.Offsets)
	}
	if _, err := NewBlockLayout(nil); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := NewBlockLayout([]int{1, 0}); err == nil {
		t.Error("zero block accepted")
	}
	even, err := EvenLayout(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(even.Sizes) != 4 || even.Sizes[0] != 3 || even.Sizes[3] != 2 {
		t.Errorf("EvenLayout = %v", even.Sizes)
	}
	// nBlocks > dim clamps.
	small, err := EvenLayout(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Sizes) != 2 {
		t.Errorf("clamped layout = %v", small.Sizes)
	}
}

func TestServerErrors(t *testing.T) {
	s, err := NewServer(speedfit.Sync, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Host(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Host(0, []float64{1}); err == nil {
		t.Error("duplicate Host accepted")
	}
	if err := s.Host(1, nil); err == nil {
		t.Error("empty block accepted")
	}
	if err := s.Push(9, []float64{1}); err == nil {
		t.Error("push to unknown block accepted")
	}
	if err := s.Push(0, []float64{1}); err == nil {
		t.Error("wrong-size gradient accepted")
	}
	if _, _, err := s.Pull(9, 0); err == nil {
		t.Error("pull of unknown block accepted")
	}
	if err := s.SetWorkers(0); err == nil {
		t.Error("SetWorkers(0) accepted")
	}
	s.Close()
	if err := s.Push(0, []float64{1, 1}); err != ErrClosed {
		t.Errorf("push after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Pull(0, 5); err != ErrClosed {
		t.Errorf("pull after close = %v, want ErrClosed", err)
	}
	if _, err := NewServer(speedfit.Sync, 0, 1); err == nil {
		t.Error("zero learning rate accepted")
	}
	if _, err := NewServer(speedfit.Sync, 0.1, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestPullUnblocksOnClose(t *testing.T) {
	s, err := NewServer(speedfit.Sync, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Host(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Pull(0, 99) // version never reaches 99
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("blocked pull returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pull did not unblock on close")
	}
}

func TestSyntheticGenerators(t *testing.T) {
	if _, _, err := SyntheticRegression(0, 5, 0, 1); err == nil {
		t.Error("accepted n=0")
	}
	if _, _, err := SyntheticClassification(5, 0, 0, 1); err == nil {
		t.Error("accepted features=0")
	}
	b, theta, err := SyntheticRegression(50, 3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 50 || len(theta) != 3 {
		t.Errorf("shape %d/%d", b.Len(), len(theta))
	}
	// Noise-free: true θ gives zero loss.
	if loss := (LinearRegression{Features: 3}).Loss(theta, b); loss > 1e-20 {
		t.Errorf("loss at truth = %g", loss)
	}
}

func TestRunStepsValidation(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 14})
	if _, err := j.RunSteps(0); err == nil {
		t.Error("RunSteps(0) accepted")
	}
}

func TestPAALoadBalanceBetterThanMXNet(t *testing.T) {
	// §5.3 in the live system: with skewed blocks, the PAA-style assignment
	// spreads bytes more evenly than MXNet's random assignment.
	sizes := []int64{500, 400, 100, 50, 30, 20, 10, 5, 5, 5}
	spread := func(strategy AssignStrategy) int64 {
		owner := assignOwners(sizes, 3, strategy, 3)
		load := make([]int64, 3)
		for b, o := range owner {
			load[o] += sizes[b]
		}
		lo, hi := load[0], load[0]
		for _, v := range load {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if p, m := spread(AssignPAA), spread(AssignMXNet); p > m {
		t.Errorf("PAA spread %d worse than MXNet %d", p, m)
	}
}

func TestSyncStragglerDetectionViaComputeTime(t *testing.T) {
	// Under synchronous barriers all wall durations equalize; §5.2 detection
	// must still find the slow worker via its gradient-production time.
	j := regJob(t, JobConfig{
		Mode: speedfit.Sync, Workers: 4, Seed: 20,
		WorkerDelays: map[int]time.Duration{1: 15 * time.Millisecond},
	})
	stats, err := j.RunSteps(10)
	if err != nil {
		t.Fatal(err)
	}
	got := DetectStragglers(stats)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", got)
	}
}

// Package psys is a real, runnable parameter-server training framework — a
// compact stand-in for the MXNet substrate of §5. Workers compute SGD
// gradients over synthetic datasets and exchange parameters with servers via
// push/pull over pluggable transports (in-process or TCP/gob); training runs
// in synchronous or asynchronous mode (§2.2); the framework implements the
// paper's system mechanisms end to end: HDFS-style chunk (re)assignment
// (§5.1), straggler detection and replacement (§5.2), parameter-block
// placement with PAA or the MXNet default (§5.3), and checkpoint-based
// elastic scaling (§5.4).
package psys

import (
	"fmt"
	"math"
	"math/rand"
)

// Batch is one mini-batch of training examples.
type Batch struct {
	X [][]float64 // feature rows
	Y []float64   // labels/targets
}

// Len returns the number of examples in the batch.
func (b Batch) Len() int { return len(b.Y) }

// Model is a trainable objective: it evaluates the loss of a parameter
// vector on a batch and computes the gradient. Implementations must be
// stateless and safe for concurrent use.
type Model interface {
	// Dim is the length of the parameter vector.
	Dim() int
	// Loss evaluates the mean loss of params on the batch.
	Loss(params []float64, b Batch) float64
	// Gradient computes dLoss/dparams on the batch into grad (len Dim).
	Gradient(params, grad []float64, b Batch)
	// Name identifies the model in logs and checkpoints.
	Name() string
}

// LinearRegression is least-squares linear regression: loss = ½·mean((x·θ −
// y)²). Its SGD training loss follows the O(1/k) trend the §3.1 fitting
// model assumes.
type LinearRegression struct {
	Features int
}

// Dim implements Model.
func (m LinearRegression) Dim() int { return m.Features }

// Name implements Model.
func (m LinearRegression) Name() string { return "linreg" }

// Loss implements Model.
func (m LinearRegression) Loss(params []float64, b Batch) float64 {
	if b.Len() == 0 {
		return 0
	}
	var sum float64
	for i, x := range b.X {
		d := dot(x, params) - b.Y[i]
		sum += d * d
	}
	return sum / (2 * float64(b.Len()))
}

// Gradient implements Model.
func (m LinearRegression) Gradient(params, grad []float64, b Batch) {
	for i := range grad {
		grad[i] = 0
	}
	if b.Len() == 0 {
		return
	}
	inv := 1 / float64(b.Len())
	for i, x := range b.X {
		d := (dot(x, params) - b.Y[i]) * inv
		for j, xj := range x {
			grad[j] += d * xj
		}
	}
}

// LogisticRegression is binary logistic regression with log loss; labels
// must be 0 or 1.
type LogisticRegression struct {
	Features int
}

// Dim implements Model.
func (m LogisticRegression) Dim() int { return m.Features }

// Name implements Model.
func (m LogisticRegression) Name() string { return "logreg" }

// Loss implements Model.
func (m LogisticRegression) Loss(params []float64, b Batch) float64 {
	if b.Len() == 0 {
		return 0
	}
	var sum float64
	for i, x := range b.X {
		p := sigmoid(dot(x, params))
		p = clampProb(p)
		if b.Y[i] > 0.5 {
			sum += -math.Log(p)
		} else {
			sum += -math.Log(1 - p)
		}
	}
	return sum / float64(b.Len())
}

// Gradient implements Model.
func (m LogisticRegression) Gradient(params, grad []float64, b Batch) {
	for i := range grad {
		grad[i] = 0
	}
	if b.Len() == 0 {
		return
	}
	inv := 1 / float64(b.Len())
	for i, x := range b.X {
		d := (sigmoid(dot(x, params)) - b.Y[i]) * inv
		for j, xj := range x {
			grad[j] += d * xj
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// SyntheticRegression generates a linear-regression dataset y = X·θ* + noise
// with a deterministic seed, returning the examples and the ground-truth θ*.
func SyntheticRegression(n, features int, noise float64, seed int64) (Batch, []float64, error) {
	if n <= 0 || features <= 0 {
		return Batch{}, nil, fmt.Errorf("psys: invalid dataset shape %dx%d", n, features)
	}
	r := rand.New(rand.NewSource(seed))
	theta := make([]float64, features)
	for i := range theta {
		theta[i] = r.NormFloat64()
	}
	b := Batch{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		b.X[i] = x
		b.Y[i] = dot(x, theta) + noise*r.NormFloat64()
	}
	return b, theta, nil
}

// SyntheticClassification generates a linearly separable-ish logistic
// dataset with the given label noise.
func SyntheticClassification(n, features int, flip float64, seed int64) (Batch, []float64, error) {
	if n <= 0 || features <= 0 {
		return Batch{}, nil, fmt.Errorf("psys: invalid dataset shape %dx%d", n, features)
	}
	r := rand.New(rand.NewSource(seed))
	theta := make([]float64, features)
	for i := range theta {
		theta[i] = r.NormFloat64()
	}
	b := Batch{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		b.X[i] = x
		y := 0.0
		if sigmoid(dot(x, theta)) > 0.5 {
			y = 1
		}
		if r.Float64() < flip {
			y = 1 - y
		}
		b.Y[i] = y
	}
	return b, theta, nil
}

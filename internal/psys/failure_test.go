package psys

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"optimus/internal/speedfit"
)

// Failure injection: the framework must surface clean errors — never hang or
// panic — when its environment breaks underneath it.

func TestWorkerSurvivesServerShutdownWithError(t *testing.T) {
	data, _, err := SyntheticRegression(200, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := StartJob(JobConfig{
		Model: LinearRegression{Features: 8}, Data: data,
		Mode: speedfit.Sync, Workers: 2, Servers: 2,
		BatchSize: 16, LR: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	if _, err := j.RunSteps(5); err != nil {
		t.Fatal(err)
	}
	// Kill one server out from under the workers.
	j.servers[0].Close()
	done := make(chan error, 1)
	go func() {
		_, err := j.RunSteps(5)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunSteps succeeded against a dead server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSteps hung on a dead server")
	}
}

func TestTCPServerShutdownSurfacesError(t *testing.T) {
	data, _, err := SyntheticRegression(200, 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	j, err := StartJob(JobConfig{
		Model: LinearRegression{Features: 8}, Data: data,
		Mode: speedfit.Async, Workers: 2, Servers: 2,
		BatchSize: 16, LR: 0.05, Seed: 2, Transport: TransportTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	if _, err := j.RunSteps(5); err != nil {
		t.Fatal(err)
	}
	if err := j.tcp[1].Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := j.RunSteps(20)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunSteps succeeded after TCP listener closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSteps hung after TCP listener closed")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestTruncatedCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 30})
	if _, err := j.RunSteps(5); err != nil {
		t.Fatal(err)
	}
	if err := j.SaveCheckpoint(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestSaveCheckpointBadPath(t *testing.T) {
	j := regJob(t, JobConfig{Mode: speedfit.Sync, Seed: 31})
	if err := j.SaveCheckpoint(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("checkpoint to unwritable path succeeded")
	}
}

func TestScaleFromStoppedJobFails(t *testing.T) {
	data, _, err := SyntheticRegression(100, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	j, err := StartJob(JobConfig{
		Model: LinearRegression{Features: 4}, Data: data,
		Mode: speedfit.Sync, Workers: 1, Servers: 1,
		BatchSize: 8, LR: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Stop()
	if _, err := Scale(j, 2, 2, filepath.Join(t.TempDir(), "x.ckpt")); err == nil {
		t.Error("Scale of a stopped job succeeded")
	}
}

func TestDialServerRefused(t *testing.T) {
	if _, err := DialServer("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

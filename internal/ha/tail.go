package ha

import (
	"optimus/internal/obs"
	"optimus/internal/wal"
)

// Tailer is a cursor over a (possibly still growing) WAL directory: each
// Poll applies every record after the cursor and advances it. A torn tail is
// not an error while tailing — it is the leader mid-write (or mid-crash);
// the next poll retries from the same cursor. The tailer never repairs the
// log: only the writer (wal.Open) truncates.
type Tailer struct {
	Dir   string
	After uint64 // last applied sequence; zero = from the beginning

	// Flight, when set, receives a black-box event when the log has been
	// compacted past the cursor (ErrGap) — the follower's unrecoverable case.
	Flight *obs.FlightRecorder
}

// Poll scans records after the cursor through fn, advancing the cursor past
// each record fn accepts. It returns how many records were applied and
// whether the scan ended at a torn tail. fn errors abort the poll with the
// cursor still pointing at the failed record.
func (t *Tailer) Poll(fn func(wal.Record) error) (int, bool, error) {
	applied := 0
	first := true
	res, err := wal.ScanFrom(t.Dir, t.After, func(r wal.Record) error {
		if first {
			first = false
			// The log may have been checkpoint-compacted past our cursor:
			// the first surviving record would then not be our successor.
			// (A checkpoint record itself is fine — it summarizes exactly
			// the history we already applied.)
			if t.After > 0 && r.Seq != t.After+1 {
				t.Flight.Record("ha", obs.SevError, "tail gap",
					obs.KU("after", t.After), obs.KU("next", r.Seq))
				return ErrGap
			}
		}
		if err := fn(r); err != nil {
			return err
		}
		t.After = r.Seq
		applied++
		return nil
	})
	if err != nil {
		return applied, false, err
	}
	return applied, res.Torn, nil
}

package ha

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"optimus/internal/obs"
)

// LeaseState is the on-disk lease document.
type LeaseState struct {
	Holder  string    `json:"holder"`
	Term    uint64    `json:"term"`
	Expires time.Time `json:"expires"`
}

// Held reports whether the lease is currently claimed at time now.
func (s LeaseState) Held(now time.Time) bool {
	return s.Holder != "" && now.Before(s.Expires)
}

// Lease is one contender's handle on a lease file. Methods are not safe for
// concurrent use within a process; cross-process safety is the point.
type Lease struct {
	Path string        // lease file path (conventionally <wal-dir>/LEASE)
	ID   string        // this contender's identity
	TTL  time.Duration // lease validity window

	// Clock overrides time.Now in tests.
	Clock func() time.Time

	// Flight, when set, receives black-box events for acquire / lost /
	// release transitions — the last thing a fail-stopping leader records.
	Flight *obs.FlightRecorder
}

func (l *Lease) now() time.Time {
	if l.Clock != nil {
		return l.Clock()
	}
	return time.Now()
}

// Read returns the current lease document. A missing file is an unclaimed
// lease, not an error.
func (l *Lease) Read() (LeaseState, error) {
	b, err := os.ReadFile(l.Path)
	if os.IsNotExist(err) {
		return LeaseState{}, nil
	}
	if err != nil {
		return LeaseState{}, fmt.Errorf("ha: reading lease: %w", err)
	}
	var st LeaseState
	if err := json.Unmarshal(b, &st); err != nil {
		// A torn lease write is treated as unclaimed: the writer crashed
		// mid-rename-prep and never held the term it was claiming.
		return LeaseState{}, nil
	}
	return st, nil
}

// write replaces the lease document atomically (temp file + rename, fsync
// before the rename so the claim survives a crash).
func (l *Lease) write(st LeaseState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(l.Path)
	tmp, err := os.CreateTemp(dir, ".lease-*")
	if err != nil {
		return fmt.Errorf("ha: writing lease: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return fmt.Errorf("ha: writing lease: %w", err)
	}
	if err := os.Rename(name, l.Path); err != nil {
		os.Remove(name)
		return fmt.Errorf("ha: writing lease: %w", err)
	}
	return nil
}

// TryAcquire claims the lease if it is unclaimed, expired, or already ours.
// A fresh claim bumps the term; re-acquiring our own lease keeps it. It
// returns the resulting state and whether we hold it.
func (l *Lease) TryAcquire() (LeaseState, bool, error) {
	cur, err := l.Read()
	if err != nil {
		return LeaseState{}, false, err
	}
	now := l.now()
	if cur.Held(now) && cur.Holder != l.ID {
		return cur, false, nil
	}
	st := LeaseState{Holder: l.ID, Term: cur.Term, Expires: now.Add(l.TTL)}
	if cur.Holder != l.ID {
		st.Term++
	}
	if err := l.write(st); err != nil {
		return LeaseState{}, false, err
	}
	// Read back: rename is last-writer-wins, so a racing claimant may have
	// overwritten ours between the rename and here. Whoever the file names
	// is the holder.
	got, err := l.Read()
	if err != nil {
		return LeaseState{}, false, err
	}
	if got.Holder == l.ID && cur.Holder != l.ID {
		l.Flight.Record("ha", obs.SevInfo, "lease acquired",
			obs.KS("holder", l.ID), obs.KU("term", got.Term),
			obs.KS("previous", cur.Holder))
	}
	return got, got.Holder == l.ID, nil
}

// Renew extends our held lease. It fails with ErrLost if the file no longer
// names us — the caller must stop acting as leader immediately (fail-stop).
func (l *Lease) Renew() (LeaseState, error) {
	cur, err := l.Read()
	if err != nil {
		return LeaseState{}, err
	}
	if cur.Holder != l.ID {
		l.Flight.Record("ha", obs.SevError, "lease lost",
			obs.KS("holder", cur.Holder), obs.KU("term", cur.Term),
			obs.KS("id", l.ID))
		return cur, ErrLost
	}
	st := LeaseState{Holder: l.ID, Term: cur.Term, Expires: l.now().Add(l.TTL)}
	if err := l.write(st); err != nil {
		return LeaseState{}, err
	}
	got, err := l.Read()
	if err != nil {
		return LeaseState{}, err
	}
	if got.Holder != l.ID {
		l.Flight.Record("ha", obs.SevError, "lease lost",
			obs.KS("holder", got.Holder), obs.KU("term", got.Term),
			obs.KS("id", l.ID))
		return got, ErrLost
	}
	return got, nil
}

// Release drops the lease if we hold it, letting the next contender claim
// the term immediately instead of waiting out the TTL.
func (l *Lease) Release() error {
	cur, err := l.Read()
	if err != nil || cur.Holder != l.ID {
		return err
	}
	cur.Expires = l.now()
	l.Flight.Record("ha", obs.SevInfo, "lease released",
		obs.KS("holder", l.ID), obs.KU("term", cur.Term))
	return l.write(cur)
}

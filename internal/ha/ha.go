// Package ha is the warm-standby high-availability layer for optimusd: a
// file-based leader lease plus a WAL tailer, the two primitives cmd/optimusd
// composes into leader/follower roles.
//
// The design (DESIGN.md §17) follows the classic log-shipping shape rather
// than a consensus protocol: the leader serializes every state change into
// its write-ahead log (internal/wal) before acking, and the standby tails
// that log into a warm replica of the scheduling engine. Leadership is a
// lease file next to the log: a JSON {holder, term, expires} document
// rewritten atomically (temp file + rename) and re-read after every write.
// On a local filesystem rename is atomic and last-writer-wins; the read-back
// catches the common interleave, which is the right durability/complexity
// trade for the single-host, multi-process deployments this repo's harness
// drives. A distributed deployment would swap the Lease for etcd/ZooKeeper
// and ship segments instead of sharing a directory — the Tailer and the
// serve.WALApplier are unchanged by that substitution.
//
// Failover timeline: the leader renews its lease every TTL/3 and fail-stops
// (exits) if a renewal discovers another holder. A follower polls both the
// log (applying new records) and the lease; when the lease expires it drains
// the final records, acquires the lease under a new term, repairs the dead
// leader's torn tail (wal.Open truncates it), appends a membership record,
// and starts scheduling. Exactly-once admission across the cutover falls out
// of the log itself: an admission exists iff its submit record does, and the
// replay applier counts duplicate IDs (zero in any healthy history).
package ha

import "errors"

// ErrLost reports a lease operation discovering a different current holder.
var ErrLost = errors.New("ha: lease lost to another holder")

// ErrGap reports that the log was compacted past the tailer's cursor (the
// follower lagged across a checkpoint); the follower must rebuild from the
// latest checkpoint instead of continuing incrementally.
var ErrGap = errors.New("ha: log compacted past tail cursor")

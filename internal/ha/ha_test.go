package ha

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/cluster"
	"optimus/internal/serve"
	"optimus/internal/wal"
)

// fakeClock is a settable time source shared by contending leases.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLeaseAcquireContention(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	path := filepath.Join(t.TempDir(), "LEASE")
	a := &Lease{Path: path, ID: "a", TTL: 10 * time.Second, Clock: clk.now}
	b := &Lease{Path: path, ID: "b", TTL: 10 * time.Second, Clock: clk.now}

	st, ok, err := a.TryAcquire()
	if err != nil || !ok || st.Term != 1 {
		t.Fatalf("a acquire: %+v ok=%v err=%v", st, ok, err)
	}
	if _, ok, _ := b.TryAcquire(); ok {
		t.Fatal("b acquired a held lease")
	}
	// Renewals extend within the same term.
	clk.advance(5 * time.Second)
	if st, err := a.Renew(); err != nil || st.Term != 1 {
		t.Fatalf("a renew: %+v err=%v", st, err)
	}
	// Expiry: b takes over with a bumped term; a's next renewal fail-stops.
	clk.advance(11 * time.Second)
	st, ok, err = b.TryAcquire()
	if err != nil || !ok || st.Term != 2 {
		t.Fatalf("b takeover: %+v ok=%v err=%v", st, ok, err)
	}
	if _, err := a.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("a renew after takeover: %v, want ErrLost", err)
	}
	// Re-acquiring our own lease keeps the term.
	if st, ok, _ := b.TryAcquire(); !ok || st.Term != 2 {
		t.Fatalf("b reacquire: %+v ok=%v", st, ok)
	}
	// Release lets the next contender in without waiting out the TTL.
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if st, ok, _ := a.TryAcquire(); !ok || st.Term != 3 {
		t.Fatalf("a after release: %+v ok=%v", st, ok)
	}
}

func TestLeaseMissingFileUnclaimed(t *testing.T) {
	l := &Lease{Path: filepath.Join(t.TempDir(), "LEASE"), ID: "x", TTL: time.Second}
	st, err := l.Read()
	if err != nil || st.Held(time.Now()) {
		t.Fatalf("missing lease: %+v err=%v", st, err)
	}
	if _, ok, err := l.TryAcquire(); err != nil || !ok {
		t.Fatalf("acquire unclaimed: ok=%v err=%v", ok, err)
	}
}

func TestTailerFollowsAndToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(wal.TypeObserve, []byte(`{"id":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	tl := &Tailer{Dir: dir}
	n, torn, err := tl.Poll(func(wal.Record) error { return nil })
	if err != nil || torn || n != 5 || tl.After != 5 {
		t.Fatalf("poll: n=%d torn=%v after=%d err=%v", n, torn, tl.After, err)
	}
	// Nothing new: an empty poll.
	if n, _, err := tl.Poll(func(wal.Record) error { return nil }); err != nil || n != 0 {
		t.Fatalf("idle poll: n=%d err=%v", n, err)
	}
	// More records appear; only the new ones are delivered.
	for i := 0; i < 3; i++ {
		if _, err := l.Append(wal.TypeObserve, []byte(`{"id":2}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if n, _, err := tl.Poll(func(r wal.Record) error { seqs = append(seqs, r.Seq); return nil }); err != nil || n != 3 {
		t.Fatalf("tail poll: n=%d err=%v", n, err)
	}
	if fmt.Sprint(seqs) != "[6 7 8]" {
		t.Fatalf("tail sequences %v", seqs)
	}
}

// newDaemon builds a serve daemon on the shared testbed cluster.
func newDaemon(t *testing.T, seed int64) *serve.Daemon {
	t.Helper()
	d, err := serve.New(serve.Config{Cluster: cluster.Testbed(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFailover is the in-process end-to-end: a leader daemon logs a live
// workload to a shared WAL dir while a warm-standby follower tails it; at a
// chaos-scheduled moment the leader dies (log closed mid-history, lease
// left to expire), the follower takes over within one TTL, repairs the log,
// and keeps serving — with exactly-once admission across the cutover.
func TestFailover(t *testing.T) {
	// The leader-kill moment comes from a seeded chaos schedule, making the
	// whole failover replayable.
	sched := chaos.Generate(chaos.GenConfig{Seed: 11, Horizon: 10, LeaderKills: 1})
	var killAfterRound int
	for _, f := range sched.Faults {
		if f.Kind == chaos.LeaderKill {
			killAfterRound = 1 + int(f.Time) // rounds 1..10
		}
	}
	if killAfterRound == 0 {
		t.Fatal("chaos schedule produced no leader kill")
	}

	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(0, 0)}
	ttl := 10 * time.Second
	leasePath := filepath.Join(dir, "LEASE")

	// Leader: lease, WAL, live workload.
	leaderLease := &Lease{Path: leasePath, ID: "leader", TTL: ttl, Clock: clk.now}
	if _, ok, err := leaderLease.TryAcquire(); err != nil || !ok {
		t.Fatalf("leader acquire: ok=%v err=%v", ok, err)
	}
	leader := newDaemon(t, 1)
	llog, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	leader.AttachWAL(llog)
	if err := leader.WALAppendMembership("leader", 1, "leader"); err != nil {
		t.Fatal(err)
	}

	// Follower: warm standby applying the same log.
	follower := newDaemon(t, 1)
	follower.SetReadOnly(true)
	applier := follower.NewWALApplier()
	tailer := &Tailer{Dir: dir}
	poll := func() {
		if _, _, err := tailer.Poll(applier.Apply); err != nil {
			t.Fatalf("follower poll: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(2))
	models := []string{"resnext-110", "seq2seq", "dssm"}
	var acked []int
	for round := 1; round <= killAfterRound; round++ {
		for n := 1 + rng.Intn(2); n > 0; n-- {
			id, err := leader.Submit(serve.SubmitRequest{
				Model: models[rng.Intn(len(models))], Mode: "async"})
			if err != nil {
				t.Fatal(err)
			}
			acked = append(acked, id)
		}
		leader.Step()
		clk.advance(time.Second)
		if _, err := leaderLease.Renew(); err != nil {
			t.Fatal(err)
		}
		poll() // follower keeps pace while the leader lives
		// The follower must reject writes while following.
		if _, err := follower.Submit(serve.SubmitRequest{Model: "dssm", Mode: "async"}); !errors.Is(err, serve.ErrNotLeader) {
			t.Fatalf("follower accepted a write: %v", err)
		}
	}

	// SIGKILL equivalent: the leader vanishes without a graceful snapshot.
	// (Closing the log stands in for the process dying; a mid-write tear is
	// exercised separately in serve's torn-tail suite.)
	if err := llog.Close(); err != nil {
		t.Fatal(err)
	}
	leaderDead := clk.now()

	// Follower notices the lease expiring, drains the tail, takes over.
	followerLease := &Lease{Path: leasePath, ID: "follower", TTL: ttl, Clock: clk.now}
	for {
		st, err := followerLease.Read()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Held(clk.now()) {
			break
		}
		clk.advance(time.Second)
	}
	if waited := clk.now().Sub(leaderDead); waited > ttl {
		t.Fatalf("takeover waited %v, beyond one lease TTL %v", waited, ttl)
	}
	st, ok, err := followerLease.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("follower acquire: ok=%v err=%v", ok, err)
	}
	poll() // final drain
	applier.Finish()
	if applier.Duplicates() != 0 {
		t.Fatalf("replication saw %d duplicate admissions", applier.Duplicates())
	}
	flog, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff}) // repairs any torn tail
	if err != nil {
		t.Fatal(err)
	}
	follower.AttachWAL(flog)
	if err := follower.WALAppendMembership("follower", st.Term, "leader"); err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly(false)
	follower.SetHAStatus(serve.HAStatus{Role: "leader", ID: "follower", Term: st.Term})

	// Promoted state must match the dead leader's logged state exactly.
	if follower.Rounds() != killAfterRound {
		t.Fatalf("follower replayed %d rounds, leader committed %d",
			follower.Rounds(), killAfterRound)
	}
	for _, id := range acked {
		if _, err := follower.Status(id); err != nil {
			t.Fatalf("acked job %d missing after takeover: %v", id, err)
		}
	}

	// The new leader schedules and admits; IDs continue without reuse.
	newID, err := follower.Submit(serve.SubmitRequest{Model: "dssm", Mode: "async"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range acked {
		if id == newID {
			t.Fatalf("job ID %d reused across failover", id)
		}
	}
	follower.Step()
	if err := flog.Close(); err != nil {
		t.Fatal(err)
	}

	// The full history (leader's reign + takeover + new leader's reign)
	// replays with exactly-once admission.
	audit := newDaemon(t, 1)
	stats, err := audit.ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicates != 0 {
		t.Fatalf("post-failover history has %d duplicate admissions", stats.Duplicates)
	}
	if _, err := audit.Status(newID); err != nil {
		t.Fatalf("new leader's admission missing from history: %v", err)
	}
}

package sim

import (
	"math"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/lossfit"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// smallMix builds a fast job mix (heavily downscaled datasets).
func smallMix(n int, seed int64) []workload.JobSpec {
	return workload.Generate(workload.GenConfig{
		N: n, Horizon: 3000, Seed: seed, Downscale: 0.02,
	})
}

func testbedConfig(policy Policy, jobs []workload.JobSpec) Config {
	return Config{
		Cluster:       cluster.Testbed(),
		Jobs:          jobs,
		Policy:        policy,
		Interval:      600,
		Seed:          1,
		UseTrueModels: true,
		ScalingBase:   20,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("expected error for empty config")
	}
	if _, err := Run(Config{Cluster: cluster.Testbed(), Policy: OptimusPolicy()}); err == nil {
		t.Error("expected error for no jobs")
	}
	if _, err := Run(Config{Cluster: cluster.Testbed(), Jobs: smallMix(2, 1)}); err == nil {
		t.Error("expected error for incomplete policy")
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	for _, policy := range []Policy{OptimusPolicy(), DRFPolicy(), TetrisPolicy()} {
		res, err := Run(testbedConfig(policy, smallMix(8, 3)))
		if err != nil {
			t.Fatalf("%s: %v", policy.Name, err)
		}
		if len(res.Unfinished) != 0 {
			t.Errorf("%s: unfinished jobs %v", policy.Name, res.Unfinished)
		}
		if res.Summary.Completed != 8 {
			t.Errorf("%s: completed %d/8", policy.Name, res.Summary.Completed)
		}
		if res.Summary.AvgJCT <= 0 || res.Summary.Makespan <= 0 {
			t.Errorf("%s: degenerate summary %+v", policy.Name, res.Summary)
		}
		if res.Summary.Makespan > 40*24*3600 {
			t.Errorf("%s: makespan exceeds MaxTime", policy.Name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testbedConfig(OptimusPolicy(), smallMix(6, 7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testbedConfig(OptimusPolicy(), smallMix(6, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.AvgJCT != b.Summary.AvgJCT || a.Summary.Makespan != b.Summary.Makespan {
		t.Errorf("non-deterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

// The headline Fig-11 shape: Optimus achieves lower average JCT and makespan
// than the DRF fairness scheduler on the same workload.
func TestOptimusBeatsDRF(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{
		N: 12, Horizon: 6000, Seed: 42, Downscale: 0.03,
	})
	opt, err := Run(testbedConfig(OptimusPolicy(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	drf, err := Run(testbedConfig(DRFPolicy(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("optimus: %s", opt.Summary)
	t.Logf("drf:     %s", drf.Summary)
	if opt.Summary.AvgJCT >= drf.Summary.AvgJCT {
		t.Errorf("Optimus avg JCT %.0f not better than DRF %.0f",
			opt.Summary.AvgJCT, drf.Summary.AvgJCT)
	}
}

func TestRunWithEstimation(t *testing.T) {
	jobs := smallMix(5, 11)
	cfg := testbedConfig(OptimusPolicy(), jobs)
	cfg.UseTrueModels = false
	cfg.PreRunSamples = 5
	cfg.SpeedNoise = 0.03
	cfg.LossNoise = 0.01
	cfg.PriorityFactor = 0.95
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != 5 {
		t.Errorf("completed %d/5 with estimation enabled", res.Summary.Completed)
	}
}

// Fig 15 shape: injected prediction error degrades performance, and the
// degradation is worse for speed error than convergence error at equal e.
func TestErrorInjectionDegrades(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{
		N: 10, Horizon: 4000, Seed: 5, Downscale: 0.03,
	})
	base := testbedConfig(OptimusPolicy(), jobs)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withErr := base
	withErr.InjectSpeedError = 0.45
	noisy, err := Run(withErr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean avgJCT=%.0f, 45%% speed error avgJCT=%.0f",
		clean.Summary.AvgJCT, noisy.Summary.AvgJCT)
	if noisy.Summary.AvgJCT < clean.Summary.AvgJCT*0.95 {
		t.Errorf("large injected error should not improve JCT: %.0f vs %.0f",
			noisy.Summary.AvgJCT, clean.Summary.AvgJCT)
	}
}

func TestScalingOverheadAccounted(t *testing.T) {
	jobs := smallMix(6, 9)
	cfg := testbedConfig(OptimusPolicy(), jobs)
	cfg.ScalingBase = 30
	cfg.ScalingPerTask = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.ScalingFrac < 0 || res.Summary.ScalingFrac > 0.5 {
		t.Errorf("scaling fraction = %g, want small but non-negative",
			res.Summary.ScalingFrac)
	}
}

func TestTimelineRecorded(t *testing.T) {
	res, err := Run(testbedConfig(OptimusPolicy(), smallMix(5, 13)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline snapshots")
	}
	sawTasks := false
	for _, s := range res.Timeline {
		if s.RunningTasks > 0 {
			sawTasks = true
		}
		if s.WorkerUtil < 0 || s.WorkerUtil > 1 || s.PSUtil < 0 || s.PSUtil > 1 {
			t.Errorf("utilization out of range: %+v", s)
		}
	}
	if !sawTasks {
		t.Error("timeline never shows running tasks")
	}
}

// Fig 14's efficiency claim: Optimus uses allocated resources more
// effectively — here, it sustains a higher average cluster CPU share while
// finishing sooner, because DRF's rigid 1:1 pairs fragment and idle capacity.
func TestOptimusUsesClusterMoreEffectively(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{
		N: 10, Horizon: 2000, Seed: 21, Downscale: 0.03,
	})
	avgShare := func(p Policy) (float64, float64) {
		res, err := Run(testbedConfig(p, jobs))
		if err != nil {
			t.Fatal(err)
		}
		var share float64
		var n int
		for _, s := range res.Timeline {
			if s.RunningTasks == 0 {
				continue
			}
			share += s.ClusterShare
			n++
		}
		if n == 0 {
			t.Fatalf("%s: empty timeline", p.Name)
		}
		return share / float64(n), res.Summary.AvgJCT
	}
	oShare, oJCT := avgShare(OptimusPolicy())
	dShare, dJCT := avgShare(DRFPolicy())
	t.Logf("cpu share: optimus=%.2f drf=%.2f; avgJCT: optimus=%.0f drf=%.0f",
		oShare, dShare, oJCT, dJCT)
	if oShare < dShare {
		t.Errorf("Optimus cluster share %.2f below DRF %.2f", oShare, dShare)
	}
	if oJCT >= dJCT {
		t.Errorf("Optimus avgJCT %.0f not better than DRF %.0f", oJCT, dJCT)
	}
}

func TestStragglersHurtButOptimusRecovers(t *testing.T) {
	jobs := smallMix(6, 31)
	clean := testbedConfig(OptimusPolicy(), jobs)
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	strag := clean
	strag.StragglerProb = 0.5
	strag.StragglerSlowdown = 0.5
	stragRes, err := Run(strag)
	if err != nil {
		t.Fatal(err)
	}
	if stragRes.Summary.AvgJCT < cleanRes.Summary.AvgJCT*0.99 {
		t.Errorf("stragglers should not speed things up: %.0f vs %.0f",
			stragRes.Summary.AvgJCT, cleanRes.Summary.AvgJCT)
	}
	// DRF (no straggler replacement) should suffer at least as much relative
	// slowdown as Optimus.
	drfClean, err := Run(testbedConfig(DRFPolicy(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	drfStrag := testbedConfig(DRFPolicy(), jobs)
	drfStrag.StragglerProb = 0.5
	drfStragRes, err := Run(drfStrag)
	if err != nil {
		t.Fatal(err)
	}
	optSlow := stragRes.Summary.AvgJCT / cleanRes.Summary.AvgJCT
	drfSlow := drfStragRes.Summary.AvgJCT / drfClean.Summary.AvgJCT
	t.Logf("straggler slowdown: optimus %.2fx, drf %.2fx", optSlow, drfSlow)
	if optSlow > drfSlow*1.3 {
		t.Errorf("Optimus with replacement degraded more (%.2fx) than DRF (%.2fx)",
			optSlow, drfSlow)
	}
}

func TestEpochsPerSecond(t *testing.T) {
	spec := workload.JobSpec{
		Model: workload.ZooByName("resnext-110"), Mode: speedfit.Sync,
		Downscale: 1,
	}
	// 1 step/s sync covers 512 examples/s; 60000-example epoch → 512/60000.
	got := EpochsPerSecond(spec, 1)
	want := 512.0 / 60000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("epochsPerSecond = %g, want %g", got, want)
	}
	spec.Mode = speedfit.Async
	got = EpochsPerSecond(spec, 1) // aggregate steps cover m=128 examples
	want = 128.0 / 60000
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("async epochsPerSecond = %g, want %g", got, want)
	}
}

func TestHybridPolicies(t *testing.T) {
	jobs := smallMix(4, 17)
	hybrid := Hybrid("optalloc+spread", OptimusPolicy().Allocate, DRFPolicy().Place)
	res, err := Run(testbedConfig(hybrid, jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != 4 {
		t.Errorf("hybrid completed %d/4", res.Summary.Completed)
	}
	h2 := Hybrid("drfalloc+optplace", DRFAllocatorOnly, OptimusPolicy().Place)
	if _, err := Run(testbedConfig(h2, jobs)); err != nil {
		t.Fatal(err)
	}
	h3 := Hybrid("tetrisalloc+optplace", TetrisAllocatorOnly, OptimusPolicy().Place)
	if _, err := Run(testbedConfig(h3, jobs)); err != nil {
		t.Fatal(err)
	}
}

func TestMixedShareSchedule(t *testing.T) {
	jobs := smallMix(6, 41)
	cfg := testbedConfig(OptimusPolicy(), jobs)
	cfg.ShareSchedule = func(tm float64) float64 {
		if tm < 3000 {
			return 0.5
		}
		return 1.0
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != 6 {
		t.Errorf("completed %d/6 under a share schedule", res.Summary.Completed)
	}
	// A permanently tiny share must still make progress (clamped to ≥5%).
	cfg2 := testbedConfig(OptimusPolicy(), jobs)
	cfg2.ShareSchedule = func(float64) float64 { return 0 }
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.Completed == 0 {
		t.Error("no jobs completed under the minimum share clamp")
	}
	if res2.Summary.AvgJCT < res.Summary.AvgJCT {
		t.Errorf("tiny share JCT %.0f should not beat day/night %.0f",
			res2.Summary.AvgJCT, res.Summary.AvgJCT)
	}
}

func TestReconfigDamperReducesChanges(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{
		N: 10, Horizon: 4000, Seed: 43, Downscale: 0.03,
	})
	scaling := func(threshold float64) float64 {
		cfg := testbedConfig(OptimusPolicy(), jobs)
		cfg.ScalingBase = 20
		cfg.ScalingPerTask = 0.5
		cfg.ReconfigThreshold = threshold
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.ScalingFrac
	}
	free, damped := scaling(0), scaling(0.2)
	t.Logf("scaling overhead: undamped %.2f%%, damped %.2f%%", free*100, damped*100)
	if damped > free {
		t.Errorf("damper increased scaling overhead: %.4f > %.4f", damped, free)
	}
}

func TestEstimateEpochsFallsBackToPrior(t *testing.T) {
	js := &jobState{
		spec: workload.JobSpec{
			Model: workload.ZooByName("cnn-rand"), Mode: speedfit.Sync,
			Threshold: 0.02,
		},
		lossFit: lossfit.NewFitter(),
	}
	cfg := Config{PriorEpochs: 42}
	if got := estimateEpochs(js, cfg); got != 42 {
		t.Errorf("prior = %g, want 42", got)
	}
	// With enough clean points the fit takes over.
	m := js.spec.Model
	for e := 1.0; e <= 12; e++ {
		if err := js.lossFit.Add(e, m.TrueLoss(e)); err != nil {
			t.Fatal(err)
		}
	}
	got := estimateEpochs(js, cfg)
	if got == 42 {
		t.Error("fit never engaged despite 12 clean points")
	}
	truth := m.EpochsToConverge(js.spec.Threshold, 3)
	if math.Abs(got-truth)/truth > 0.5 {
		t.Errorf("estimate %g far from truth %g", got, truth)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 misbehaves")
	}
}

package sim

import (
	"math"
	"math/rand"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// This file is the estimation machinery shared between the batch simulator
// and the optimusd daemon: pre-run speed profiling, the placement-aware
// fallback speed surface, and the construction of the scheduler's JobInfo
// from a live job's online estimators. sim.Run drives it per replayed
// interval; serve.Daemon drives it per wall-clock tick.

// ApproxPlacedSpeed predicts the speed of configuration (p, w) including the
// cross-server transfer cost of spreading the job evenly over the fewest
// servers that can host it. This is what a measured speed model would have
// learned — the paper's fitted f(p,w) is calibrated from placed deployments,
// not from an ideal single-switch abstraction.
func ApproxPlacedSpeed(c *cluster.Cluster, spec workload.JobSpec, p, w int) float64 {
	if p < 1 || w < 1 {
		return 0
	}
	taskCPU := (spec.Model.WorkerRes[cluster.CPU] + spec.Model.PSRes[cluster.CPU]) / 2
	nodeCPU := c.Capacity()[cluster.CPU] / float64(c.Len())
	perNode := 1.0
	if taskCPU > 0 {
		perNode = math.Floor(nodeCPU / taskCPU)
		if perNode < 1 {
			perNode = 1
		}
	}
	return spec.Model.SmoothPlacedSpeed(spec.Mode, p, w, perNode)
}

// PreRunProfile simulates the §3.2 sample runs on a small dataset: n (p, w)
// configurations measured against the job's ground-truth physics with
// relative observation noise, fed into the job's speed estimator. It returns
// the raw observations exactly as accepted, so a durability layer can log
// them and replay Observe calls byte-identically (DESIGN.md §17).
func PreRunProfile(est *speedfit.Estimator, spec workload.JobSpec, n int, noise float64, rng *rand.Rand) []speedfit.Sample {
	plan := speedfit.SamplingPlan(n, 24)
	out := make([]speedfit.Sample, 0, len(plan))
	for _, c := range plan {
		truth := spec.Model.TrueSpeed(spec.Mode, c[0], c[1])
		if truth <= 0 {
			continue
		}
		obs := truth * (1 + noise*rng.NormFloat64())
		if obs <= 0 {
			obs = truth
		}
		// Ignore the impossible: Observe only rejects invalid inputs, which
		// cannot occur here by construction.
		_ = est.Observe(c[0], c[1], obs)
		out = append(out, speedfit.Sample{P: c[0], W: c[1], Speed: obs})
	}
	return out
}

// estimatedEpochs runs the online loss fit and converts it to a total-epoch
// estimate, falling back to the prior when the fit is not ready.
func estimatedEpochs(fit *lossfit.Fitter, threshold, priorEpochs float64) float64 {
	if fit.Len() >= 5 {
		if m, err := fit.Fit(); err == nil {
			if steps, err := m.StepsToConverge(threshold, 1, 3); err == nil {
				return steps
			}
		}
	}
	return priorEpochs
}

// estimatedSpeed returns the scheduler's epochs/s predictor for a live job:
// the fitted §3.2 model once it is over-determined, otherwise a pessimistic
// placement-aware fallback so the job stays schedulable but unfavoured.
func estimatedSpeed(c *cluster.Cluster, spec workload.JobSpec, est *speedfit.Estimator) func(p, w int) float64 {
	// Trust the fitted model only once it is over-determined; an
	// exactly-determined fit (5 sync samples for 5 coefficients) can be
	// arbitrarily biased off the sampled points.
	minSamples := 5
	if spec.Mode == speedfit.Sync {
		minSamples = 6
	}
	if est.Configurations() >= minSamples {
		if m, err := est.Fit(); err == nil {
			return func(p, w int) float64 {
				return EpochsPerSecond(spec, m.Speed(p, w))
			}
		}
	}
	return func(p, w int) float64 {
		return EpochsPerSecond(spec, ApproxPlacedSpeed(c, spec, p, w)) * 0.8
	}
}

// EstimatedView builds the scheduler's JobInfo for one live job from its
// online estimators — the default (estimation-driven) path of the
// simulator's schedulerView, shared with the optimusd daemon. progress is
// the job's completed epochs; priorEpochs and priorityFactor mirror the
// same-named Config fields. The returned Speed closure is memoized and must
// be rebuilt each scheduling interval.
func EstimatedView(c *cluster.Cluster, spec workload.JobSpec, progress float64,
	fit *lossfit.Fitter, est *speedfit.Estimator,
	priorEpochs, priorityFactor float64) *core.JobInfo {

	info := &core.JobInfo{
		ID:        spec.ID,
		WorkerRes: spec.Model.WorkerRes,
		PSRes:     spec.Model.PSRes,
	}
	if spec.Mode == speedfit.Sync {
		info.MaxWorkers = spec.Model.GlobalBatch // m = M/w must stay ≥ 1
	}
	totalEst := estimatedEpochs(fit, spec.Threshold, priorEpochs)
	remaining := totalEst - progress
	if remaining < 0.1 {
		remaining = 0.1
	}
	info.RemainingWork = remaining
	info.Speed = estimatedSpeed(c, spec, est)
	// The estimated surface is a pure function of the accumulated speed
	// observations (plus the immutable spec and cluster capacity), so the
	// estimator's generation stamp is exactly the right change signal for
	// incremental sessions.
	info.SpeedGen = est.Generation()
	// Beginning-state priority damping (§4.1).
	if totalEst > 0 && progress/totalEst < 0.1 {
		info.Priority = priorityFactor
	}
	info.Speed = core.MemoizeSpeed(info.Speed)
	return info
}

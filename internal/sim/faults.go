package sim

import (
	"optimus/internal/chaos"
	"optimus/internal/core"
	"optimus/internal/metrics"
	"optimus/internal/workload"
)

// Fault semantics in the discrete-time simulator (§5 resilience):
//
//   - Jobs checkpoint at every scheduling-interval boundary (the simulator's
//     stand-in for §5.4's periodic HDFS checkpoints). A chaos CheckpointFail
//     makes one boundary write fail, widening the next rollback window.
//   - A NodeCrash kills every task placed on the node at the crash instant;
//     a TaskKill kills one of the job's tasks. Either way the incarnation is
//     lost: the job rolls back to its last checkpoint (the progress since is
//     counted as wasted work), its data chunks and tasks are requeued, and at
//     its next placement it pays the §5.4 checkpoint-restore pause (plus any
//     RecoveryDelay), counted as recovery time.
//   - A crashed node is unavailable to placement until its outage ends.
//   - Straggler faults degrade one job at the fault's severity; policies that
//     handle stragglers (§5.2) replace the slow worker after one detection
//     interval, which counts as one task restart. NetworkSlow degrades every
//     job for intervals overlapping the outage window.
//
// Everything is driven by the interval grid and the chaos schedule alone, so
// a seeded schedule replays byte-identically.
type faultRuntime struct {
	inj *chaos.Injector
	rec *metrics.Recorder
	// nodeDownUntil maps node ID → end of its current outage.
	nodeDownUntil map[string]float64
	netSlowUntil  float64
	netSlowSev    float64
}

func newFaultRuntime(s *chaos.Schedule, rec *metrics.Recorder) (*faultRuntime, error) {
	if s == nil || s.Len() == 0 {
		return nil, nil
	}
	inj, err := chaos.NewInjector(*s)
	if err != nil {
		return nil, err
	}
	return &faultRuntime{
		inj:           inj,
		rec:           rec,
		nodeDownUntil: make(map[string]float64),
	}, nil
}

// isDown reports whether the node is inside an outage at time t.
func (fr *faultRuntime) isDown(nodeID string, t float64) bool {
	return fr.nodeDownUntil[nodeID] > t
}

// netFactor returns the speed multiplier for an interval starting at t0:
// the NetworkSlow severity while an outage window is open, 1 otherwise.
func (fr *faultRuntime) netFactor(t0 float64) float64 {
	if fr.netSlowUntil > t0 {
		return fr.netSlowSev
	}
	return 1
}

// collect fires the faults scheduled in [t0, t1): it updates outage windows,
// job degradations and checkpoint/recovery markers, and returns the earliest
// crash time per affected job. Call it after placement (crashes must see
// where tasks actually landed) and before advancing progress. With a nil
// active set (fast-forward through an idle stretch) faults still fire so no
// outage is ever lost.
func (fr *faultRuntime) collect(t0, t1 float64, active []*jobState) map[int]float64 {
	byID := make(map[int]*jobState, len(active))
	for _, js := range active {
		byID[js.spec.ID] = js
	}
	var crashAt map[int]float64
	markCrash := func(id int, t float64) {
		if crashAt == nil {
			crashAt = make(map[int]float64)
		}
		if cur, ok := crashAt[id]; !ok || t < cur {
			crashAt[id] = t
		}
	}
	for _, f := range fr.inj.Window(t0, t1) {
		fr.rec.AddFault()
		at := f.Time
		if at < t0 {
			at = t0 // delivered late after a fast-forward: fires now
		}
		switch f.Kind {
		case chaos.NodeCrash:
			if until := at + f.Duration; until > fr.nodeDownUntil[f.Node] {
				fr.nodeDownUntil[f.Node] = until
			}
			for id, js := range byID {
				if js.placed && containsNode(js.nodes, f.Node) {
					markCrash(id, at)
				}
			}
		case chaos.TaskKill:
			if js := byID[f.Job]; js != nil && js.placed {
				markCrash(f.Job, at)
			}
		case chaos.Straggler:
			if js := byID[f.Job]; js != nil {
				js.straggling = true
				js.stragglerSev = f.Severity
				js.stragglerUntil = at + f.Duration
			}
		case chaos.NetworkSlow:
			if until := at + f.Duration; until > fr.netSlowUntil {
				fr.netSlowUntil = until
			}
			fr.netSlowSev = f.Severity
		case chaos.CheckpointFail:
			if js := byID[f.Job]; js != nil {
				js.ckptSkip = true
			}
		case chaos.RecoveryDelay:
			if js := byID[f.Job]; js != nil {
				js.restoreDelay += f.Duration
			}
		}
	}
	return crashAt
}

// crash rolls a job back to its last checkpoint at time t: progress since the
// checkpoint becomes wasted work, the deployment is torn down (its tasks and
// data chunks requeue at the next placement) and the restore pause is owed.
func (fr *faultRuntime) crash(js *jobState, rate float64) {
	if wasted := js.progress - js.ckptProgress; wasted > 0 && rate > 0 {
		fr.rec.AddWastedWork(wasted / rate)
	}
	js.progress = js.ckptProgress
	fr.rec.AddRestarts(js.alloc.Tasks())
	js.placed = false
	js.needRestore = true
	js.alloc = core.Allocation{}
	js.spread = workload.TaskSpread{}
	js.nodes = nil
}

func containsNode(nodes []string, id string) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}

package sim

import (
	"reflect"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/workload"
)

// TestCellsOneCellGoldenEquivalence runs the full simulator — estimation,
// churn damping, shrink retries, stragglers and all — under the single
// engine and under the 1-cell sharded scheduler, across 30+ seeds. Every
// deterministic output must match exactly: the sharding seam may not perturb
// a single decision when there is nothing to shard.
func TestCellsOneCellGoldenEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 32; seed++ {
		jobs := workload.Generate(workload.GenConfig{
			N: 4 + int(seed%5), Horizon: 3000, Seed: seed, Downscale: 0.02,
		})
		mk := func(p Policy) Config {
			cfg := Config{
				Cluster:     cluster.Testbed(),
				Jobs:        jobs,
				Policy:      p,
				Interval:    600,
				Seed:        seed,
				ScalingBase: 20,
			}
			// Odd seeds run the estimation path (speed/loss fitting with
			// noise) plus straggler injection; even seeds the true models.
			if seed%2 == 1 {
				cfg.PreRunSamples = 5
				cfg.SpeedNoise = 0.03
				cfg.LossNoise = 0.01
				cfg.StragglerProb = 0.05
			} else {
				cfg.UseTrueModels = true
			}
			return cfg
		}
		single, err := Run(mk(OptimusPolicy()))
		if err != nil {
			t.Fatalf("seed %d: single: %v", seed, err)
		}
		sharded, err := Run(mk(CellsPolicy(1)))
		if err != nil {
			t.Fatalf("seed %d: cells-1: %v", seed, err)
		}

		if single.Summary != sharded.Summary {
			t.Fatalf("seed %d: summaries diverge\nsingle: %+v\ncells:  %+v",
				seed, single.Summary, sharded.Summary)
		}
		if !reflect.DeepEqual(single.JCTs, sharded.JCTs) {
			t.Fatalf("seed %d: JCTs diverge\nsingle: %v\ncells:  %v", seed, single.JCTs, sharded.JCTs)
		}
		if !reflect.DeepEqual(single.Timeline, sharded.Timeline) {
			t.Fatalf("seed %d: timelines diverge", seed)
		}
		if !reflect.DeepEqual(single.Unfinished, sharded.Unfinished) {
			t.Fatalf("seed %d: unfinished diverge: %v vs %v", seed, single.Unfinished, sharded.Unfinished)
		}
		if !reflect.DeepEqual(single.Intervals, sharded.Intervals) {
			t.Fatalf("seed %d: interval records diverge", seed)
		}
	}
}

// TestCellsMultiCellSim checks the sharded policy end-to-end in the
// simulator at n>1: runs complete, are reproducible, and the run's recorder
// carries the commit-protocol counters via the BindRecorder seam.
func TestCellsMultiCellSim(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{
		N: 10, Horizon: 4000, Seed: 9, Downscale: 0.02,
	})
	cfg := Config{
		Cluster:       cluster.Testbed(),
		Jobs:          jobs,
		Policy:        CellsPolicy(3),
		Interval:      600,
		Seed:          9,
		UseTrueModels: true,
		ScalingBase:   20,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("multi-cell run not reproducible: %+v vs %+v", a.Summary, b.Summary)
	}
	if a.Summary.Completed == 0 {
		t.Fatal("no jobs completed under cells-3")
	}
	commits, _, _, _, _ := a.Metrics.CellCounters()
	if commits == 0 {
		t.Fatal("BindRecorder did not surface commit counters")
	}
}

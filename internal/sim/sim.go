// Package sim is the discrete-time deep-learning-cluster simulator of §6.1.
// It replays a job trace against a cluster and a scheduling policy at fixed
// scheduling intervals (10 minutes in the paper), driving job progress from
// the ground-truth physics of the workload package: Eqn-2 step times made
// placement-aware via the Appendix transfer model, true loss curves for
// convergence, and checkpoint-based scaling pauses (§5.4).
//
// The scheduler side only observes noisy samples — pre-run speed profiles,
// online speed measurements and per-epoch losses — and builds its own
// lossfit/speedfit estimates, exactly mirroring how Optimus runs on a real
// cluster. Ground truth and estimation never mix unless a Config says so.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/metrics"
	"optimus/internal/obs"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// Policy bundles an allocation algorithm with a placement algorithm; the
// ablation experiments (Fig 18/19) mix and match them.
type Policy struct {
	Name     string
	Allocate func(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation
	Place    func(reqs []core.PlacementRequest, c *cluster.Cluster) (map[int]core.Placement, []int)

	// PlaceRetry, when set, is the placement entry point for the shrink-retry
	// escape hatch: unlike Place it never consults or updates incremental
	// session state, because retries deliberately run against the partially
	// committed cluster mid-interval. Nil means Place is safe to reuse.
	PlaceRetry func(reqs []core.PlacementRequest, c *cluster.Cluster) (map[int]core.Placement, []int)

	// Incr, when set, is the policy's incremental scheduling session. Run uses
	// it to hand the session the pre-placement cluster preparation step (reset
	// plus reservations) so clean intervals can skip it, to invalidate the
	// placement cache when reservations may have changed, and to surface the
	// tier counters into the run's metrics.
	Incr *core.Incremental

	// Session, when set, returns a private instance of the policy for one
	// simulation run. Policies whose Allocate/Place closures carry reusable
	// scratch state (core.AllocState / core.PlaceState) need one instance per
	// run: experiment sweeps build a []Policy once and execute runs in
	// parallel, so sharing the closures would race on the scratch buffers.
	// Run calls Session once at startup; stateless policies leave it nil.
	Session func() Policy

	// Instrument, when set, attaches tracing and audit sinks to the policy's
	// internal scheduler state (the AllocState/PlaceState hidden inside the
	// Allocate/Place closures). Run calls it once per run, after Session,
	// with Config.Trace and Config.Audit — either may be nil, meaning that
	// sink is off. Policies without internal state leave it nil.
	Instrument func(tr *obs.Tracer, au *obs.AuditLog)

	// BindRecorder, when set, points the policy's internal counters (e.g.
	// the cells commit/conflict protocol) at the run's metrics recorder. Run
	// calls it once per run, after Instrument, so Result.Metrics carries the
	// policy's own counters alongside the simulator's.
	BindRecorder func(rec *metrics.Recorder)
}

// Config parameterizes one simulation run.
type Config struct {
	Cluster *cluster.Cluster
	Jobs    []workload.JobSpec
	Policy  Policy

	Interval float64 // scheduling interval, seconds (paper: 600)
	MaxTime  float64 // hard stop, seconds (0 → 40 days)
	Seed     int64

	// --- estimation behaviour ---
	// UseTrueModels bypasses online fitting and hands the scheduler the
	// ground-truth Q and f (used by the ablation studies to isolate the
	// allocation/placement algorithms from estimation error).
	UseTrueModels bool
	// PreRunSamples is the number of (p,w) profiling runs before each job
	// starts (§6.1 uses 5). Ignored when UseTrueModels is set.
	PreRunSamples int
	// SpeedNoise / LossNoise are relative observation noises (e.g. 0.03).
	SpeedNoise, LossNoise float64
	// PriorEpochs is the convergence guess used before the loss fitter has
	// enough data (the "beginning state" of §4.1).
	PriorEpochs float64
	// PriorityFactor dampens the marginal gain of beginning-state jobs
	// (paper: 0.95; 1.0 disables). Only meaningful for the Optimus policy.
	PriorityFactor float64

	// --- Fig 15 controlled error injection (overrides fitting) ---
	// InjectConvError / InjectSpeedError e replace estimates with
	// truth·(1±e·(1−progress)), the paper's decay-with-progress scheme.
	InjectConvError, InjectSpeedError float64

	// --- scaling overhead (§5.4/§6.2) ---
	// ScalingBase is the fixed checkpoint/restart pause; ScalingPerTask is
	// added per task of the new configuration.
	ScalingBase, ScalingPerTask float64
	// ReconfigThreshold implements the §7 churn damper: a running job is
	// only rescaled when the predicted speed improvement exceeds this
	// fraction (e.g. 0.15 → 15%), avoiding checkpoint pauses for marginal
	// gains. Zero disables damping.
	ReconfigThreshold float64

	// Stragglers: probability per running job per interval that one worker
	// degrades (§5.2). Policies named "optimus" replace stragglers after one
	// detection interval; others suffer them for the job's lifetime on that
	// configuration.
	StragglerProb     float64
	StragglerSlowdown float64 // e.g. 0.5 → straggling job runs at 50%

	// Faults, when non-nil, is a chaos schedule replayed against the run:
	// node crashes, task kills, stragglers, network slowdowns, checkpoint
	// write failures and delayed recoveries (see internal/sim/faults.go for
	// the exact semantics). The same schedule and seed reproduce the same
	// run byte for byte.
	Faults *chaos.Schedule

	// ShareSchedule implements the §7 mixed-workload extension: Optimus asks
	// a central resource manager for a share of the cluster that varies over
	// time (e.g. more at night). The function maps simulation time to the
	// fraction of nodes available to DL jobs; nil means the whole cluster.
	ShareSchedule func(t float64) float64

	// --- observability (internal/obs) ---
	// Trace, when non-nil and enabled, receives one span tree per scheduling
	// interval (interval → fit / allocate / place / deploy, plus the kernel
	// spans of instrumented policies). Audit receives the per-grant and
	// per-placement decision log, stamped with the round number and
	// simulated time. Both default to nil — off — at zero cost to the run.
	Trace *obs.Tracer
	Audit *obs.AuditLog
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 600
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 40 * 24 * 3600
	}
	if c.PreRunSamples <= 0 {
		c.PreRunSamples = 5
	}
	if c.PriorEpochs <= 0 {
		c.PriorEpochs = 80
	}
	if c.PriorityFactor <= 0 {
		c.PriorityFactor = 1.0
	}
	if c.ScalingBase < 0 {
		c.ScalingBase = 0
	}
	if c.StragglerSlowdown <= 0 || c.StragglerSlowdown > 1 {
		c.StragglerSlowdown = 0.5
	}
}

// Result is the outcome of one run.
type Result struct {
	Summary  metrics.Summary
	Timeline []metrics.IntervalStats
	// JCTs maps job ID → completion time − arrival (completed jobs only).
	JCTs map[int]float64
	// Unfinished lists jobs that did not converge before MaxTime.
	Unfinished []int
	// Intervals is the number of scheduling rounds executed.
	Intervals int
	// Metrics is the run's full recorder — Summary and Timeline above are
	// derived from it — including the wall-clock latency histograms of the
	// scheduling hot path (interval / refit / allocate / place).
	Metrics *metrics.Recorder
}

// jobState is the simulator's full view of one job.
type jobState struct {
	spec        workload.JobSpec
	totalEpochs float64 // ground truth
	progress    float64 // epochs completed
	done        bool
	doneAt      float64

	// current deployment
	alloc  core.Allocation
	spread workload.TaskSpread
	placed bool

	// estimation state
	lossFit  *lossfit.Fitter
	speedEst *speedfit.Estimator
	errSign  float64 // ±1, fixed per job, for Fig-15 injection

	straggling bool // a slow worker is degrading the job (§5.2)
	// chaos-injected straggler shape: severity overrides the Config slowdown
	// and the degradation expires at stragglerUntil (0 → until replaced).
	stragglerSev   float64
	stragglerUntil float64

	// fault-recovery state (see faults.go)
	nodes        []string // node IDs hosting the current deployment
	ckptProgress float64  // progress at the last successful checkpoint
	ckptSkip     bool     // next boundary checkpoint write fails (chaos)
	needRestore  bool     // crashed; owes a checkpoint-restore pause
	restoreDelay float64  // extra one-shot recovery delay (chaos)
}

// EpochsPerSecond converts a steps/s speed into epochs/s for the job: each
// aggregate step covers `batch` examples (m per worker-step for async, M per
// synchronized step for sync). Exported for the optimusd daemon, which runs
// the same job physics live instead of in a batch replay.
func EpochsPerSecond(spec workload.JobSpec, stepsPerSec float64) float64 {
	m := spec.Model
	examples := float64(m.DatasetSize)
	if spec.Downscale > 0 && spec.Downscale <= 1 {
		examples *= spec.Downscale
	}
	var batch float64
	if spec.Mode == speedfit.Sync {
		batch = float64(m.GlobalBatch)
	} else {
		batch = float64(m.BatchPerWkr)
	}
	return stepsPerSec * batch / examples
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("sim: no cluster")
	}
	if cfg.Policy.Allocate == nil || cfg.Policy.Place == nil {
		return nil, fmt.Errorf("sim: policy %q incomplete", cfg.Policy.Name)
	}
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	if cfg.Policy.Session != nil {
		// Materialize a run-private policy instance (per-run scheduler
		// scratch state); cfg is a copy, so the caller's Policy is untouched.
		cfg.Policy = cfg.Policy.Session()
	}
	if cfg.Policy.Instrument != nil {
		cfg.Policy.Instrument(cfg.Trace, cfg.Audit)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec := metrics.NewRecorder()
	if cfg.Policy.BindRecorder != nil {
		cfg.Policy.BindRecorder(rec)
	}
	fitCache := make(map[string]speedfit.Model)
	faults, err := newFaultRuntime(cfg.Faults, rec)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	states := make([]*jobState, len(cfg.Jobs))
	for i, spec := range cfg.Jobs {
		js := &jobState{
			spec:        spec,
			totalEpochs: spec.TotalEpochs(),
			lossFit:     lossfit.NewFitter(),
			speedEst: speedfit.NewEstimator(spec.Mode,
				float64(spec.Model.GlobalBatch)),
			errSign: 1,
		}
		if rng.Intn(2) == 0 {
			js.errSign = -1
		}
		states[i] = js
		rec.Arrive(spec.ID, spec.Arrival)
	}

	res := &Result{JCTs: make(map[int]float64), Metrics: rec}
	now := 0.0
	// Per-interval scratch, reused across intervals: the scheduling loop is
	// the simulator's hot path and these buffers otherwise churn the
	// allocator every 600 simulated seconds.
	var (
		infos []*core.JobInfo
		reqs  []core.PlacementRequest
	)
	pauses := make(map[int]float64)
	infoByID := make(map[int]*core.JobInfo)
	// Interval-local overrides of the policy's outputs (the §7 churn damper
	// and the shrink-retry escape hatch). They used to be written into the
	// returned maps directly; an incremental policy returns its own cached
	// maps, which the simulator must never mutate.
	allocOverride := make(map[int]core.Allocation)
	placeOverride := make(map[int]core.Placement)
	// preparePlacement is the pre-placement cluster preparation step: wipe
	// all commitments, then re-reserve the nodes lent out (§7 shares) or down
	// (faults). For an incremental policy it is handed to the placement
	// session, which skips it entirely on clean intervals; otherwise Run
	// invokes it directly before every Place.
	var prepErr error
	availNodes := cfg.Cluster.Len()
	preparePlacement := func() {
		cfg.Cluster.ResetAll()
		for _, n := range cfg.Cluster.Nodes()[availNodes:] {
			if err := n.Allocate(n.Capacity); err != nil {
				prepErr = fmt.Errorf("sim: reserving node %s: %w", n.ID, err)
				return
			}
		}
		if faults != nil {
			for _, n := range cfg.Cluster.Nodes()[:availNodes] {
				if !faults.isDown(n.ID, now) {
					continue
				}
				if err := n.Allocate(n.Capacity); err != nil {
					prepErr = fmt.Errorf("sim: reserving crashed node %s: %w", n.ID, err)
					return
				}
			}
		}
	}
	if cfg.Policy.Incr != nil {
		cfg.Policy.Incr.Place.Prepare = func(*cluster.Cluster) { preparePlacement() }
	}
	for now < cfg.MaxTime {
		active := activeJobs(states, now)
		if len(active) == 0 {
			if allDone(states) {
				break
			}
			// Fast-forward to the next arrival, firing any faults in the
			// skipped stretch (outages must not be lost to idle time).
			next := nextArrival(states, now, cfg.Interval)
			if faults != nil {
				faults.collect(now, next, nil)
			}
			now = next
			continue
		}
		res.Intervals++
		intervalEnd := now + cfg.Interval
		cfg.Audit.Stamp(res.Intervals, now)
		ivSpan := cfg.Trace.Begin("interval")
		ivStart := time.Now()

		// Pre-run profiling for newly arrived jobs (once per job), then the
		// scheduler views — together the estimation phase of the interval.
		fitSpan := cfg.Trace.Begin("fit")
		if !cfg.UseTrueModels {
			for _, js := range active {
				if js.speedEst.Configurations() == 0 {
					preRunProfile(js, cfg, rng)
				}
			}
		}
		infos = infos[:0]
		for _, js := range active {
			refitStart := time.Now()
			infos = append(infos, schedulerView(js, cfg, rng, fitCache))
			rec.ObserveRefitDuration(time.Since(refitStart).Seconds())
		}
		cfg.Trace.End(fitSpan)

		// §7 mixed workloads: only a share of the nodes may be available.
		availNodes = cfg.Cluster.Len()
		if cfg.ShareSchedule != nil {
			share := cfg.ShareSchedule(now)
			if share < 0.05 {
				share = 0.05
			}
			if share > 1 {
				share = 1
			}
			availNodes = int(math.Ceil(share * float64(cfg.Cluster.Len())))
			if availNodes < 1 {
				availNodes = 1
			}
		}

		// Allocate and place. Nodes inside a fault outage contribute no
		// capacity and are reserved below so placement cannot touch them.
		var capacity cluster.Resources
		for _, n := range cfg.Cluster.Nodes()[:availNodes] {
			if faults != nil && faults.isDown(n.ID, now) {
				continue
			}
			capacity = capacity.Add(n.Capacity)
		}
		allocSpan := cfg.Trace.Begin("allocate")
		allocStart := time.Now()
		alloc := cfg.Policy.Allocate(infos, capacity)
		rec.ObserveAllocateDuration(time.Since(allocStart).Seconds())
		cfg.Trace.End(allocSpan)

		// §7 churn damper: keep a running job's configuration when the
		// proposed change is not predicted to pay for its checkpoint pause.
		clear(allocOverride)
		clear(placeOverride)
		if cfg.ReconfigThreshold > 0 {
			clear(infoByID)
			for _, in := range infos {
				infoByID[in.ID] = in
			}
			for _, js := range active {
				if !js.placed || js.alloc.Tasks() == 0 {
					continue
				}
				a := alloc[js.spec.ID]
				if a == js.alloc || a.Tasks() == 0 {
					continue
				}
				info := infoByID[js.spec.ID]
				oldRate := info.Speed(js.alloc.PS, js.alloc.Workers)
				newRate := info.Speed(a.PS, a.Workers)
				if newRate < oldRate*(1+cfg.ReconfigThreshold) {
					allocOverride[js.spec.ID] = js.alloc
				}
			}
		}
		effAlloc := func(id int) core.Allocation {
			if a, ok := allocOverride[id]; ok {
				return a
			}
			return alloc[id]
		}
		if cfg.Policy.Incr == nil {
			preparePlacement()
		} else if cfg.ShareSchedule != nil || faults != nil {
			// Reservations can change between intervals without touching any
			// node the session's own commits cover, so the cached placement
			// must not survive into this interval.
			cfg.Policy.Incr.Place.Invalidate()
		}
		if prepErr != nil {
			return nil, prepErr
		}
		reqs = reqs[:0]
		for _, info := range infos {
			a := effAlloc(info.ID)
			if a.PS > 0 && a.Workers > 0 {
				reqs = append(reqs, core.PlacementRequest{
					JobID: info.ID, Alloc: a,
					WorkerRes: info.WorkerRes, PSRes: info.PSRes,
				})
			}
		}
		placeSpan := cfg.Trace.Begin("place")
		placeStart := time.Now()
		placements, unplacedIDs := cfg.Policy.Place(reqs, cfg.Cluster)
		if prepErr != nil {
			return nil, prepErr
		}

		// A job can be allocatable against aggregate capacity yet not
		// packable onto nodes (fragmentation). Shrink its allocation and
		// retry so the cluster never idles while a runnable job waits —
		// this is the "rescheduled in the next scheduling interval" escape
		// hatch of §4.2 made immediate.
		placeRetry := cfg.Policy.PlaceRetry
		if placeRetry == nil {
			placeRetry = cfg.Policy.Place
		}
		for _, id := range unplacedIDs {
			a := effAlloc(id)
			var info *core.JobInfo
			for _, in := range infos {
				if in.ID == id {
					info = in
					break
				}
			}
			if info == nil || a.PS < 1 || a.Workers < 1 {
				continue
			}
			for a.PS+a.Workers > 2 {
				if a.Workers >= a.PS {
					a.Workers--
				} else {
					a.PS--
				}
				retry := []core.PlacementRequest{{
					JobID: id, Alloc: a,
					WorkerRes: info.WorkerRes, PSRes: info.PSRes,
				}}
				pls, unp := placeRetry(retry, cfg.Cluster)
				if len(unp) == 0 {
					placeOverride[id] = pls[id]
					allocOverride[id] = a
					break
				}
			}
		}
		rec.ObservePlaceDuration(time.Since(placeStart).Seconds())
		cfg.Trace.End(placeSpan)
		if cfg.Policy.Incr != nil {
			rec.SetIncrStats(cfg.Policy.Incr.Stats())
		}

		// Apply deployments, charging scaling pauses for changed configs.
		deploySpan := cfg.Trace.Begin("deploy")
		clear(pauses)
		for _, js := range active {
			pl, ok := placements[js.spec.ID]
			if o, rescued := placeOverride[js.spec.ID]; rescued {
				pl, ok = o, true
			}
			if !ok {
				js.placed = false
				js.alloc = core.Allocation{}
				js.nodes = nil
				continue
			}
			// Record what was actually deployed — baseline placements may
			// place fewer tasks than allocated (pending pods).
			ps, w := pl.Counts()
			newAlloc := core.Allocation{PS: ps, Workers: w}
			changed := js.placed && (newAlloc != js.alloc)
			fresh := !js.placed
			js.alloc = newAlloc
			js.spread = workload.TaskSpread{
				PSOnNode:      pl.PSOnNode,
				WorkersOnNode: pl.WorkersOnNode,
			}
			js.nodes = pl.NodeIDs
			js.placed = true
			if changed || fresh {
				pause := cfg.ScalingBase + cfg.ScalingPerTask*float64(newAlloc.Tasks())
				if js.needRestore {
					// Requeued after a crash: the pause is a checkpoint
					// restore (§5.4) plus any injected recovery delay.
					pause += js.restoreDelay
					js.restoreDelay = 0
					js.needRestore = false
					if pause > cfg.Interval {
						pause = cfg.Interval
					}
					rec.AddRecoveryTime(pause)
				}
				if pause > cfg.Interval {
					pause = cfg.Interval
				}
				pauses[js.spec.ID] = pause
				if changed { // §6.2 counts reconfiguration, not first launch
					rec.AddScalingTime(pause)
				}
			}
			// Straggler lifecycle (§5.2): injected degradations expire on
			// their own; straggler-aware policies replace the slow worker
			// after one detection interval (a task restart when the worker
			// was chaos-killed rather than merely slow by chance).
			if js.straggling {
				expired := js.stragglerUntil > 0 && js.stragglerUntil <= now
				replaced := policyHandlesStragglers(cfg.Policy)
				if expired || replaced {
					if replaced && !expired && js.stragglerSev > 0 {
						rec.AddRestarts(1)
					}
					js.straggling = false
					js.stragglerSev = 0
					js.stragglerUntil = 0
				}
			}
			if cfg.StragglerProb > 0 && rng.Float64() < cfg.StragglerProb {
				js.straggling = true
			}
		}

		// Fire this interval's faults now that placement is known: crashes
		// must hit the tasks where they actually landed.
		var crashAt map[int]float64
		if faults != nil {
			crashAt = faults.collect(now, intervalEnd, active)
		}

		// Advance one interval of progress.
		for _, js := range active {
			if !js.placed || js.done {
				continue
			}
			crashT, crashed := crashAt[js.spec.ID]
			end := intervalEnd
			if crashed && crashT < end {
				end = crashT
			}
			stepsPerSec := js.spec.Model.PlacedSpeed(js.spec.Mode, js.spread)
			if js.straggling {
				sev := cfg.StragglerSlowdown
				if js.stragglerSev > 0 {
					sev = js.stragglerSev
				}
				stepsPerSec *= sev
			}
			if faults != nil {
				stepsPerSec *= faults.netFactor(now)
			}
			rate := EpochsPerSecond(js.spec, stepsPerSec)
			start := now + pauses[js.spec.ID]
			if start < end && rate > 0 {
				remaining := js.totalEpochs - js.progress
				span := end - start
				if gained := rate * span; gained < remaining {
					js.progress += gained
				} else {
					// Completion inside [start, end) always beats a crash at
					// end: the converged model is already checkpointed.
					js.progress = js.totalEpochs
					js.done = true
					js.doneAt = start + remaining/rate
					rec.Complete(js.spec.ID, js.doneAt)
					res.JCTs[js.spec.ID] = js.doneAt - js.spec.Arrival
				}
				// Online observations for the estimators. A crashed job's
				// interval telemetry dies with its tasks.
				if !cfg.UseTrueModels && !crashed {
					observe(js, stepsPerSec, cfg, rng)
				}
			}
			if crashed && !js.done {
				faults.crash(js, rate)
			}
		}

		// Interval-boundary checkpoints (§5.4): surviving deployments save
		// their state unless a chaos CheckpointFail eats the write. Crashed
		// jobs keep their previous checkpoint.
		for _, js := range active {
			if js.done || !js.placed {
				continue
			}
			if js.ckptSkip {
				js.ckptSkip = false
				continue
			}
			js.ckptProgress = js.progress
		}

		cfg.Trace.End(deploySpan)
		rec.Snapshot(snapshot(now, states, cfg))
		rec.ObserveIntervalDuration(time.Since(ivStart).Seconds())
		if cfg.Trace.Enabled() {
			cfg.Trace.Annotate(ivSpan, fmt.Sprintf("round=%d jobs=%d", res.Intervals, len(active)))
		}
		cfg.Trace.End(ivSpan)
		now = intervalEnd
	}

	for _, js := range states {
		if !js.done {
			res.Unfinished = append(res.Unfinished, js.spec.ID)
		}
	}
	res.Summary = rec.Summarize()
	res.Timeline = rec.Timeline()
	return res, nil
}

func activeJobs(states []*jobState, now float64) []*jobState {
	var out []*jobState
	for _, js := range states {
		if !js.done && js.spec.Arrival <= now {
			out = append(out, js)
		}
	}
	return out
}

func allDone(states []*jobState) bool {
	for _, js := range states {
		if !js.done {
			return false
		}
	}
	return true
}

func nextArrival(states []*jobState, now, interval float64) float64 {
	next := math.Inf(1)
	for _, js := range states {
		if !js.done && js.spec.Arrival > now && js.spec.Arrival < next {
			next = js.spec.Arrival
		}
	}
	if math.IsInf(next, 1) {
		return now + interval
	}
	// Align to the interval grid.
	k := math.Ceil((next - now) / interval)
	if k < 1 {
		k = 1
	}
	return now + k*interval
}

// preRunProfile simulates the §3.2 sample runs on a small dataset: a handful
// of (p,w) configurations measured with noise.
func preRunProfile(js *jobState, cfg Config, rng *rand.Rand) {
	PreRunProfile(js.speedEst, js.spec, cfg.PreRunSamples, cfg.SpeedNoise, rng)
}

// observe feeds the running job's interval measurements to its estimators.
func observe(js *jobState, stepsPerSec float64, cfg Config, rng *rand.Rand) {
	if stepsPerSec > 0 {
		obs := stepsPerSec * (1 + cfg.SpeedNoise*rng.NormFloat64())
		if obs > 0 {
			_ = js.speedEst.Observe(js.alloc.PS, js.alloc.Workers, obs)
		}
	}
	if js.progress > 0 {
		loss := js.spec.Model.TrueLoss(js.progress) * (1 + cfg.LossNoise*rng.NormFloat64())
		if loss > 0 {
			_ = js.lossFit.Add(js.progress, loss)
		}
	}
}

// approxPlacedSpeed is the Config-bound form of ApproxPlacedSpeed (view.go).
func approxPlacedSpeed(cfg Config, spec workload.JobSpec, p, w int) float64 {
	return ApproxPlacedSpeed(cfg.Cluster, spec, p, w)
}

// trueFitted builds the "perfect estimation" speed model for a job: an
// Eqn-3/4 model fitted to noise-free placed-speed samples. The fitted form's
// basis functions are monotone, so — exactly like the paper's learned models
// — it smooths over the colocation valley of the raw placement physics that
// would otherwise trap the greedy allocator in (1,1)-scale local optima.
// Results are cached per (model, mode) for the duration of a run.
func trueFitted(cfg Config, cache map[string]speedfit.Model, spec workload.JobSpec) (speedfit.Model, bool) {
	key := spec.Model.Name + "/" + spec.Mode.String()
	if m, ok := cache[key]; ok {
		return m, m.Valid()
	}
	var samples []speedfit.Sample
	for p := 1; p <= 16; p++ {
		for w := 1; w <= 16; w++ {
			s := approxPlacedSpeed(cfg, spec, p, w)
			if s > 0 {
				samples = append(samples, speedfit.Sample{P: p, W: w, Speed: s})
			}
		}
	}
	m, err := speedfit.Fit(spec.Mode, samples, float64(spec.Model.GlobalBatch))
	if err != nil {
		cache[key] = speedfit.Model{}
		return speedfit.Model{}, false
	}
	cache[key] = m
	return m, true
}

// truePredictor returns the noise-free fitted steps/s predictor for a job,
// falling back to the smooth placed-speed surface when fitting fails.
func truePredictor(cfg Config, cache map[string]speedfit.Model, spec workload.JobSpec) func(p, w int) float64 {
	if m, ok := trueFitted(cfg, cache, spec); ok {
		return m.Speed
	}
	return func(p, w int) float64 { return approxPlacedSpeed(cfg, spec, p, w) }
}

// schedulerView builds the core.JobInfo the policy sees for one job: a
// remaining-work estimate Q (in epochs) and a speed function (epochs/s).
func schedulerView(js *jobState, cfg Config, rng *rand.Rand, fitCache map[string]speedfit.Model) *core.JobInfo {
	spec := js.spec
	info := &core.JobInfo{
		ID:        spec.ID,
		WorkerRes: spec.Model.WorkerRes,
		PSRes:     spec.Model.PSRes,
	}
	if spec.Mode == speedfit.Sync {
		info.MaxWorkers = spec.Model.GlobalBatch // m = M/w must stay ≥ 1
	}

	progressFrac := 0.0
	if js.totalEpochs > 0 {
		progressFrac = js.progress / js.totalEpochs
	}

	// --- remaining work Q (epochs) ---
	var totalEst float64
	switch {
	case cfg.InjectConvError > 0:
		e := cfg.InjectConvError * (1 - progressFrac)
		totalEst = js.totalEpochs * (1 + js.errSign*e)
	case cfg.UseTrueModels:
		totalEst = js.totalEpochs
	default:
		totalEst = estimateEpochs(js, cfg)
	}
	remaining := totalEst - js.progress
	if remaining < 0.1 {
		remaining = 0.1
	}
	info.RemainingWork = remaining

	// --- speed function (epochs/s) ---
	switch {
	case cfg.InjectSpeedError > 0:
		// The injected surface depends on progress, which moves every
		// interval; leave SpeedGen zero so incremental sessions never trust
		// it across intervals.
		e := cfg.InjectSpeedError * (1 - progressFrac)
		factor := 1 + js.errSign*e
		if factor <= 0.01 {
			factor = 0.01
		}
		base := truePredictor(cfg, fitCache, spec)
		info.Speed = func(p, w int) float64 {
			return EpochsPerSecond(spec, base(p, w)) * factor
		}
	case cfg.UseTrueModels:
		// Ground truth is a pure function of the immutable spec: one constant
		// non-zero stamp for the whole run.
		base := truePredictor(cfg, fitCache, spec)
		info.Speed = func(p, w int) float64 {
			return EpochsPerSecond(spec, base(p, w))
		}
		info.SpeedGen = 1
	default:
		// The estimated surface is a pure function of the accumulated speed
		// observations (plus run-constant spec and cluster capacity), so the
		// estimator's generation stamp is exactly the right change signal.
		info.Speed = estimatedSpeed(cfg.Cluster, spec, js.speedEst)
		info.SpeedGen = js.speedEst.Generation()
		// Beginning-state priority damping (§4.1).
		if progressFrac < 0.1 {
			info.Priority = cfg.PriorityFactor
		}
	}
	_ = rng
	// Every speed closure above is pure for the duration of the interval,
	// and the allocator plus the §7 churn damper probe it with heavily
	// repeated arguments — memoize per job per interval.
	info.Speed = core.MemoizeSpeed(info.Speed)
	return info
}

// estimateEpochs runs the online loss fit and converts it to a total-epoch
// estimate, falling back to the prior when the fit is not ready.
func estimateEpochs(js *jobState, cfg Config) float64 {
	return estimatedEpochs(js.lossFit, js.spec.Threshold, cfg.PriorEpochs)
}

// policyHandlesStragglers reports whether the policy performs §5.2 straggler
// replacement (only Optimus does in the paper's system).
func policyHandlesStragglers(p Policy) bool {
	return p.Name == "optimus" || strings.HasPrefix(p.Name, "cells")
}

// snapshot computes the Fig-14 interval statistics from the current states.
func snapshot(now float64, states []*jobState, cfg Config) metrics.IntervalStats {
	s := metrics.IntervalStats{Time: now}
	var wUtilSum, pUtilSum float64
	var wTasks, pTasks int
	var usedCPU float64
	for _, js := range states {
		if js.done {
			continue
		}
		if js.spec.Arrival > now {
			continue
		}
		if !js.placed {
			s.WaitingJobs++
			continue
		}
		s.RunningJobs++
		s.RunningTasks += js.alloc.Tasks()
		wu, pu := taskUtilizations(js)
		wUtilSum += wu * float64(js.alloc.Workers)
		pUtilSum += pu * float64(js.alloc.PS)
		wTasks += js.alloc.Workers
		pTasks += js.alloc.PS
		usedCPU += js.spec.Model.WorkerRes[cluster.CPU]*float64(js.alloc.Workers) +
			js.spec.Model.PSRes[cluster.CPU]*float64(js.alloc.PS)
	}
	if wTasks > 0 {
		s.WorkerUtil = wUtilSum / float64(wTasks)
	}
	if pTasks > 0 {
		s.PSUtil = pUtilSum / float64(pTasks)
	}
	if total := cfg.Cluster.Capacity()[cluster.CPU]; total > 0 {
		s.ClusterShare = usedCPU / total
	}
	return s
}

// taskUtilizations derives the normalized CPU utilization of the job's
// workers and parameter servers from the Eqn-2 physics: a worker computes
// for m·T_fwd+T_back of each step; a PS is busy for its update and transfer
// share. The rest of the step is waiting — unused allocated CPU, which is
// what Fig 14(b)(c) visualizes.
func taskUtilizations(js *jobState) (worker, ps float64) {
	m := js.spec.Model
	p, w := js.alloc.PS, js.alloc.Workers
	if p < 1 || w < 1 {
		return 0, 0
	}
	step := m.PlacedStepTime(js.spec.Mode, js.spread)
	if step <= 0 || math.IsInf(step, 1) {
		return 0, 0
	}
	var mEff float64
	if js.spec.Mode == speedfit.Sync {
		mEff = float64(m.GlobalBatch) / float64(w)
	} else {
		mEff = float64(m.BatchPerWkr)
	}
	compute := mEff*m.FwdPerEx + m.Backward
	worker = clamp01(compute / step)

	update := (m.ModelBytes / m.UpdateRate) * float64(w) / float64(p)
	transfer := 2 * (m.ModelBytes / float64(p)) * float64(w) / m.PSBandwidth
	ps = clamp01((update + transfer*0.3) / step) // NIC DMA ≠ CPU; charge 30%
	return worker, ps
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

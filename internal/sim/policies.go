package sim

import (
	"fmt"

	"optimus/internal/baselines"
	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/obs"
)

// OptimusPolicy is the full §4 scheduler: marginal-gain allocation plus
// Theorem-1 placement, run through the delta-driven incremental sessions of
// internal/core. Each simulation run gets its own session (via the Session
// hook), so steady-state intervals reuse the previous interval's outputs —
// byte-identical to a from-scratch recompute — without sharing mutable state
// across the parallel runs of an experiment sweep.
func OptimusPolicy() Policy {
	session := func() Policy {
		inc := core.NewIncremental()
		return Policy{
			Name:       "optimus",
			Allocate:   inc.Alloc.Allocate,
			Place:      inc.Place.Place,
			PlaceRetry: inc.Place.PlaceRetry,
			Incr:       inc,
			Instrument: func(tr *obs.Tracer, au *obs.AuditLog) {
				inc.Alloc.St.Trace, inc.Alloc.St.Audit = tr, au
				inc.Place.St.Trace, inc.Place.St.Audit = tr, au
			},
		}
	}
	p := session()
	p.Session = session
	return p
}

// CellsPolicy is the sharded shared-state scheduler: the cluster split into
// n cells, each running its own §4.1/§4.2 kernel session against a shared
// store with optimistic conflict-aware commits (internal/cells). With n=1 it
// is byte-equivalent to OptimusPolicy — the golden equivalence tests pin
// that — so the sharding seam costs nothing until it is actually sharded.
func CellsPolicy(n int) Policy {
	if n < 1 {
		n = 1
	}
	name := fmt.Sprintf("cells-%d", n)
	session := func() Policy {
		ms := cells.New(cells.Options{Cells: n})
		return Policy{
			Name:         name,
			Allocate:     ms.Allocate,
			Place:        ms.Place,
			Instrument:   ms.Instrument,
			BindRecorder: ms.BindRecorder,
		}
	}
	p := session()
	p.Session = session
	return p
}

// DRFPolicy is the fairness baseline: DRF progressive filling with
// load-balancing (Kubernetes-default) placement.
func DRFPolicy() Policy {
	return Policy{
		Name: "drf",
		Allocate: func(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
			return baselines.DRFAllocate(jobs, capacity, 0)
		},
		Place: baselines.SpreadPlace,
	}
}

// TetrisPolicy is the packing baseline: shortest-remaining-first allocation
// with fragmentation-minimizing placement.
func TetrisPolicy() Policy {
	return Policy{
		Name: "tetris",
		Allocate: func(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
			return baselines.TetrisAllocate(jobs, capacity, 4)
		},
		Place: baselines.PackPlace,
	}
}

// Hybrid builds an ablation policy combining any allocator with any placer
// (Fig 18 uses baseline allocators with Optimus placement; Fig 19 the
// reverse).
func Hybrid(name string,
	alloc func([]*core.JobInfo, cluster.Resources) map[int]core.Allocation,
	place func([]core.PlacementRequest, *cluster.Cluster) (map[int]core.Placement, []int),
) Policy {
	return Policy{Name: name, Allocate: alloc, Place: place}
}

// DRFAllocatorOnly exposes the baseline allocator for ablations.
func DRFAllocatorOnly(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
	return baselines.DRFAllocate(jobs, capacity, 0)
}

// TetrisAllocatorOnly exposes the baseline allocator for ablations.
func TetrisAllocatorOnly(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
	return baselines.TetrisAllocate(jobs, capacity, 4)
}

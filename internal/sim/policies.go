package sim

import (
	"optimus/internal/baselines"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/obs"
)

// OptimusPolicy is the full §4 scheduler: marginal-gain allocation plus
// Theorem-1 placement. Each simulation run gets its own allocator and placer
// state (via the Session hook), so the per-interval re-optimization reuses
// scratch buffers instead of re-allocating them — without sharing mutable
// state across the parallel runs of an experiment sweep.
func OptimusPolicy() Policy {
	session := func() Policy {
		alloc := core.NewAllocState()
		place := core.NewPlaceState()
		return Policy{
			Name:     "optimus",
			Allocate: alloc.Allocate,
			Place:    place.Place,
			Instrument: func(tr *obs.Tracer, au *obs.AuditLog) {
				alloc.Trace, alloc.Audit = tr, au
				place.Trace, place.Audit = tr, au
			},
		}
	}
	p := session()
	p.Session = session
	return p
}

// DRFPolicy is the fairness baseline: DRF progressive filling with
// load-balancing (Kubernetes-default) placement.
func DRFPolicy() Policy {
	return Policy{
		Name: "drf",
		Allocate: func(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
			return baselines.DRFAllocate(jobs, capacity, 0)
		},
		Place: baselines.SpreadPlace,
	}
}

// TetrisPolicy is the packing baseline: shortest-remaining-first allocation
// with fragmentation-minimizing placement.
func TetrisPolicy() Policy {
	return Policy{
		Name: "tetris",
		Allocate: func(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
			return baselines.TetrisAllocate(jobs, capacity, 4)
		},
		Place: baselines.PackPlace,
	}
}

// Hybrid builds an ablation policy combining any allocator with any placer
// (Fig 18 uses baseline allocators with Optimus placement; Fig 19 the
// reverse).
func Hybrid(name string,
	alloc func([]*core.JobInfo, cluster.Resources) map[int]core.Allocation,
	place func([]core.PlacementRequest, *cluster.Cluster) (map[int]core.Placement, []int),
) Policy {
	return Policy{Name: name, Allocate: alloc, Place: place}
}

// DRFAllocatorOnly exposes the baseline allocator for ablations.
func DRFAllocatorOnly(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
	return baselines.DRFAllocate(jobs, capacity, 0)
}

// TetrisAllocatorOnly exposes the baseline allocator for ablations.
func TetrisAllocatorOnly(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
	return baselines.TetrisAllocate(jobs, capacity, 4)
}

package sim

import (
	"testing"

	"optimus/internal/obs"
)

// TestRunTraced checks the observability contract of a traced run: one
// "interval" span tree per scheduling round (with fit/allocate/place/deploy
// children and the instrumented kernels below them), a complete per-job
// grant history, and non-empty latency histograms.
func TestRunTraced(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultSpanBuffer)
	au := obs.NewAuditLog(obs.DefaultAuditBuffer)
	cfg := testbedConfig(OptimusPolicy(), smallMix(4, 7))
	cfg.Trace = tr
	cfg.Audit = au
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == 0 {
		t.Fatal("no intervals executed")
	}

	spans := tr.Spans()
	byName := map[string]int{}
	roots := 0
	for _, s := range spans {
		byName[s.Name]++
		if s.Parent == 0 {
			roots++
		}
		if s.Dur < 0 {
			t.Errorf("span %q left open", s.Name)
		}
	}
	if byName["interval"] != res.Intervals {
		t.Errorf("interval spans = %d, want one per round (%d)", byName["interval"], res.Intervals)
	}
	if roots != byName["interval"] {
		t.Errorf("roots = %d, want every root to be an interval span", roots)
	}
	for _, phase := range []string{"fit", "allocate", "place", "deploy"} {
		if byName[phase] != res.Intervals {
			t.Errorf("%s spans = %d, want %d", phase, byName[phase], res.Intervals)
		}
	}
	// The instrumented policy emits kernel spans beneath the phase spans.
	if byName["alloc-kernel"] != res.Intervals {
		t.Errorf("alloc-kernel spans = %d, want %d", byName["alloc-kernel"], res.Intervals)
	}
	if byName["place-kernel"] == 0 {
		t.Error("no place-kernel spans")
	}

	// Audit: every completed job has a grant history starting at the seed,
	// stamped with a valid round.
	for id := range res.JCTs {
		evs := au.Grants(id)
		if len(evs) == 0 {
			t.Errorf("job %d: no grant events", id)
			continue
		}
		if evs[0].Kind != obs.GrantSeed {
			t.Errorf("job %d: first grant %q", id, evs[0].Kind)
		}
		for _, ev := range evs {
			if ev.Round < 1 || ev.Round > res.Intervals {
				t.Errorf("job %d: grant stamped round %d of %d", id, ev.Round, res.Intervals)
			}
		}
	}
	if evs := au.Places(-1); len(evs) == 0 {
		t.Error("no placement events")
	}

	// Latency histograms track every round even without tracing attached.
	if got := res.Metrics.IntervalDuration().Count(); got != uint64(res.Intervals) {
		t.Errorf("interval histogram count = %d, want %d", got, res.Intervals)
	}
	if res.Metrics.AllocateDuration().Count() == 0 || res.Metrics.PlaceDuration().Count() == 0 {
		t.Error("empty kernel latency histograms")
	}
	if res.Metrics.RefitDuration().Count() == 0 {
		t.Error("empty refit latency histogram")
	}
}

// TestRunUntracedUnchanged pins that attaching no sinks leaves results
// byte-identical to a traced run — tracing must observe, never steer.
func TestRunUntracedUnchanged(t *testing.T) {
	plain, err := Run(testbedConfig(OptimusPolicy(), smallMix(4, 7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testbedConfig(OptimusPolicy(), smallMix(4, 7))
	cfg.Trace = obs.NewTracer(256)
	cfg.Audit = obs.NewAuditLog(256)
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary != traced.Summary {
		t.Errorf("tracing changed the run:\nplain  %+v\ntraced %+v", plain.Summary, traced.Summary)
	}
	if plain.Intervals != traced.Intervals {
		t.Errorf("intervals %d vs %d", plain.Intervals, traced.Intervals)
	}
}

package sim

import (
	"testing"

	"optimus/internal/chaos"
	"optimus/internal/cluster"
)

// faultMix is a schedule exercising every fault kind against the testbed.
// Faults land mid-interval (the grid is 600s) so crashes waste real progress,
// and task kills recur across several intervals so every job is hit at least
// once while it is actually running, whatever its arrival time.
func faultMix() *chaos.Schedule {
	s := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.Straggler, Time: 650, Job: 1, Duration: 2000, Severity: 0.4},
		{Kind: chaos.CheckpointFail, Time: 700, Job: 2},
		{Kind: chaos.RecoveryDelay, Time: 850, Job: 0, Duration: 90},
		{Kind: chaos.NodeCrash, Time: 900, Node: "cpu-0", Duration: 1200},
		{Kind: chaos.NodeCrash, Time: 900, Node: "gpu-0", Duration: 1200},
		{Kind: chaos.NetworkSlow, Time: 2700, Duration: 1200, Severity: 0.6},
	}}
	for _, t := range []float64{950, 1550, 2150} {
		for job := 0; job < 6; job++ {
			s.Faults = append(s.Faults, chaos.Fault{
				Kind: chaos.TaskKill, Time: t + 10*float64(job), Job: job,
			})
		}
	}
	return s
}

func chaosConfig(policy Policy) Config {
	cfg := testbedConfig(policy, smallMix(6, 11))
	cfg.Faults = faultMix()
	return cfg
}

// The determinism contract of the acceptance criteria: the same seed and the
// same schedule replayed twice produce byte-identical metrics summaries.
func TestFaultDeterminism(t *testing.T) {
	a, err := Run(chaosConfig(OptimusPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosConfig(OptimusPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := a.Summary.String(), b.Summary.String(); sa != sb {
		t.Errorf("replay diverged:\n a: %s\n b: %s", sa, sb)
	}
	if len(a.Timeline) != len(b.Timeline) {
		t.Errorf("timeline lengths differ: %d vs %d", len(a.Timeline), len(b.Timeline))
	}
}

// A node crash mid-run must not lose jobs: everything still completes, with
// visible recovery overhead (wasted work recomputed, restore pauses paid).
func TestNodeCrashRecovery(t *testing.T) {
	for _, policy := range []Policy{OptimusPolicy(), DRFPolicy(), TetrisPolicy()} {
		res, err := Run(chaosConfig(policy))
		if err != nil {
			t.Fatalf("%s: %v", policy.Name, err)
		}
		t.Logf("%s: %s", policy.Name, res.Summary)
		if len(res.Unfinished) != 0 {
			t.Errorf("%s: lost jobs %v", policy.Name, res.Unfinished)
		}
		// Late-scheduled kills never fire once all jobs are done, so the
		// injected count is bounded by, not equal to, the schedule length.
		if n := res.Summary.FaultsInjected; n == 0 || n > faultMix().Len() {
			t.Errorf("%s: injected %d faults, schedule has %d",
				policy.Name, n, faultMix().Len())
		}
		if res.Summary.RecoveryTime <= 0 {
			t.Errorf("%s: no recovery overhead recorded", policy.Name)
		}
		if res.Summary.TasksRestarted == 0 {
			t.Errorf("%s: no task restarts recorded", policy.Name)
		}
		if res.Summary.WastedWork <= 0 {
			t.Errorf("%s: no wasted work recorded", policy.Name)
		}
	}
}

// Faults must make the run strictly worse than the identical fault-free run —
// the overhead the failure-sweep exhibit quantifies.
func TestFaultsDegradeJCT(t *testing.T) {
	clean, err := Run(testbedConfig(OptimusPolicy(), smallMix(6, 11)))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(chaosConfig(OptimusPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean:  %s", clean.Summary)
	t.Logf("faulty: %s", faulty.Summary)
	if faulty.Summary.AvgJCT <= clean.Summary.AvgJCT {
		t.Errorf("faults did not degrade avg JCT: %.0f vs clean %.0f",
			faulty.Summary.AvgJCT, clean.Summary.AvgJCT)
	}
	if clean.Summary.FaultsInjected != 0 {
		t.Errorf("clean run recorded %d faults", clean.Summary.FaultsInjected)
	}
}

// An invalid schedule is rejected up front, and a crash of a never-used node
// plus idle-stretch fast-forwards must not wedge the run.
func TestFaultEdgeCases(t *testing.T) {
	cfg := testbedConfig(OptimusPolicy(), smallMix(2, 3))
	cfg.Faults = &chaos.Schedule{Faults: []chaos.Fault{{Kind: chaos.NodeCrash, Time: 1}}}
	if _, err := Run(cfg); err == nil {
		t.Error("invalid schedule accepted")
	}

	cfg = testbedConfig(OptimusPolicy(), smallMix(2, 3))
	cfg.Faults = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.NodeCrash, Time: 0, Node: "no-such-node", Duration: 600},
		{Kind: chaos.TaskKill, Time: 600, Job: 999}, // job never exists
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unfinished) != 0 {
		t.Errorf("unfinished %v", res.Unfinished)
	}
	if res.Summary.FaultsInjected != 2 {
		t.Errorf("injected %d", res.Summary.FaultsInjected)
	}
}

// A generated schedule (Poisson MTBF) drives a multi-policy comparison run —
// the shape of the failure-sweep exhibit.
func TestGeneratedScheduleComparison(t *testing.T) {
	nodes := make([]string, 0)
	for _, n := range cluster.Testbed().Nodes() {
		nodes = append(nodes, n.ID)
	}
	s := chaos.Generate(chaos.GenConfig{
		Seed: 5, Horizon: 20000, Nodes: nodes, NodeMTBF: 40000,
		MeanOutage: 900, Jobs: []int{0, 1, 2, 3, 4, 5}, TaskKillRate: 0.5,
	})
	if s.Len() == 0 {
		t.Skip("generator produced no faults at these rates")
	}
	for _, policy := range []Policy{OptimusPolicy(), DRFPolicy()} {
		cfg := testbedConfig(policy, smallMix(6, 9))
		cfg.Faults = &s
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name, err)
		}
		if len(res.Unfinished) != 0 {
			t.Errorf("%s: unfinished %v", policy.Name, res.Unfinished)
		}
	}
}

package metrics

import (
	"math"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Arrive(0, 100)
	r.Arrive(1, 200)
	r.Complete(0, 400)
	r.Complete(1, 1000)

	if got := r.JCT(0); got != 300 {
		t.Errorf("JCT(0) = %g, want 300", got)
	}
	if got := r.JCT(99); !math.IsNaN(got) {
		t.Errorf("JCT(99) = %g, want NaN", got)
	}
	jcts := r.JCTs()
	if len(jcts) != 2 || jcts[0] != 300 || jcts[1] != 800 {
		t.Errorf("JCTs = %v", jcts)
	}

	s := r.Summarize()
	if s.Completed != 2 {
		t.Errorf("Completed = %d", s.Completed)
	}
	if s.AvgJCT != 550 {
		t.Errorf("AvgJCT = %g, want 550", s.AvgJCT)
	}
	if s.Makespan != 900 { // first arrival 100 → last completion 1000
		t.Errorf("Makespan = %g, want 900", s.Makespan)
	}
	if s.MedianJCT != 550 {
		t.Errorf("MedianJCT = %g, want 550", s.MedianJCT)
	}
	if s.StddevJCT != 250 {
		t.Errorf("StddevJCT = %g, want 250", s.StddevJCT)
	}
}

func TestScalingFraction(t *testing.T) {
	r := NewRecorder()
	r.Arrive(0, 0)
	r.Complete(0, 1000)
	r.AddScalingTime(25.4)
	s := r.Summarize()
	if math.Abs(s.ScalingFrac-0.0254) > 1e-12 {
		t.Errorf("ScalingFrac = %g, want 0.0254", s.ScalingFrac)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder().Summarize()
	if s.Completed != 0 || s.AvgJCT != 0 || s.Makespan != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder()
	r.Snapshot(IntervalStats{Time: 0, RunningTasks: 5})
	r.Snapshot(IntervalStats{Time: 600, RunningTasks: 8})
	tl := r.Timeline()
	if len(tl) != 2 || tl[1].RunningTasks != 8 {
		t.Errorf("Timeline = %v", tl)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := percentile(xs, 0.5); got != 25 {
		t.Errorf("p50 = %g, want 25", got)
	}
	if got := percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %g, want 10", got)
	}
	if got := percentile(xs, 1); got != 40 {
		t.Errorf("p100 = %g, want 40", got)
	}
	if got := percentile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single = %g, want 7", got)
	}
	if got := percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty = %g, want NaN", got)
	}
}

func TestMeanStddev(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g", got)
	}
	if got := Stddev([]float64{2, 4, 6}); math.Abs(got-1.632993) > 1e-5 {
		t.Errorf("Stddev = %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Error("empty inputs should give NaN")
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Arrive(0, 0)
	r.Complete(0, 60)
	if got := r.Summarize().String(); got == "" {
		t.Error("empty Summary string")
	}
}

// Package metrics collects and summarizes the evaluation quantities of §6:
// per-job completion times (JCT), makespan, and per-interval timelines of
// running task counts and normalized CPU utilization (Fig. 13/14).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"optimus/internal/core"
	"optimus/internal/obs"
)

// IntervalStats is one snapshot of cluster state, taken per scheduling
// interval (Fig. 14's x-axis).
type IntervalStats struct {
	Time         float64 // seconds since experiment start
	RunningTasks int     // total PS + workers deployed
	RunningJobs  int
	WaitingJobs  int
	// WorkerUtil / PSUtil are the mean normalized CPU utilizations of
	// worker / parameter-server tasks: the fraction of a training step the
	// task spends computing rather than waiting (Fig. 14b/c).
	WorkerUtil float64
	PSUtil     float64
	// ClusterShare is the fraction of total cluster CPU currently allocated.
	ClusterShare float64
}

// Recorder accumulates per-run measurements.
type Recorder struct {
	arrivals    map[int]float64
	completions map[int]float64
	timeline    []IntervalStats
	// scaling bookkeeping (§6.2 "resource adjustment overhead")
	scalingTime float64
	// fault/recovery bookkeeping (§5 resilience, driven by internal/chaos)
	faults       int
	restarts     int
	wastedWork   float64
	recoveryTime float64

	// sharded-scheduler bookkeeping (internal/cells optimistic commits)
	cellCommits          int
	cellConflicts        int
	cellConflictsAvoided int
	cellRetries          int
	cellJobsMoved        int

	// incremental-scheduler bookkeeping (internal/core dirty-set sessions):
	// the cumulative tier counters of the run's session pair, overwritten
	// each interval because the session already accumulates.
	incr    core.IncrStats
	incrSet bool

	// wall-clock latency histograms of the scheduler hot path (log-bucketed,
	// see obs.BucketBound). Unlike the simulated-time counters above these
	// measure real elapsed time, so they answer "how expensive is a
	// scheduling decision", not "how long did the modeled cluster run".
	durInterval obs.Histogram
	durRefit    obs.Histogram
	durAlloc    obs.Histogram
	durPlace    obs.Histogram
	durAPI      obs.Histogram
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		arrivals:    make(map[int]float64),
		completions: make(map[int]float64),
	}
}

// Arrive records job submission.
func (r *Recorder) Arrive(jobID int, t float64) { r.arrivals[jobID] = t }

// Complete records job completion.
func (r *Recorder) Complete(jobID int, t float64) { r.completions[jobID] = t }

// Snapshot appends one timeline entry.
func (r *Recorder) Snapshot(s IntervalStats) { r.timeline = append(r.timeline, s) }

// AddScalingTime accounts job-seconds spent on checkpoint/restart scaling.
func (r *Recorder) AddScalingTime(d float64) { r.scalingTime += d }

// AddFault counts one injected fault.
func (r *Recorder) AddFault() { r.faults++ }

// AddRestarts counts tasks restarted by fault recovery.
func (r *Recorder) AddRestarts(n int) { r.restarts += n }

// AddWastedWork accounts job-seconds of progress lost to a failure and
// recomputed after the checkpoint restore.
func (r *Recorder) AddWastedWork(d float64) { r.wastedWork += d }

// AddRecoveryTime accounts job-seconds paused in checkpoint-restore recovery.
func (r *Recorder) AddRecoveryTime(d float64) { r.recoveryTime += d }

// AddCellCommits counts successful optimistic grant commits.
func (r *Recorder) AddCellCommits(n int) { r.cellCommits += n }

// AddCellConflicts counts commit attempts rejected at revalidation.
func (r *Recorder) AddCellConflicts(n int) { r.cellConflicts += n }

// AddCellConflictsAvoided counts stale-snapshot commits that revalidated and
// still landed (the arktos "conflict avoided" outcome).
func (r *Recorder) AddCellConflictsAvoided(n int) { r.cellConflictsAvoided += n }

// AddCellRetries counts re-place/re-commit attempts after conflicts.
func (r *Recorder) AddCellRetries(n int) { r.cellRetries += n }

// AddCellJobsMoved counts jobs migrated between cells by the rebalancer.
func (r *Recorder) AddCellJobsMoved(n int) { r.cellJobsMoved += n }

// SetIncrStats overwrites the incremental-session tier counters with the
// session's cumulative snapshot (called once per scheduling interval).
func (r *Recorder) SetIncrStats(s core.IncrStats) { r.incr, r.incrSet = s, true }

// IncrStats returns the last recorded incremental-session counters; ok is
// false when no incremental policy ever reported.
func (r *Recorder) IncrStats() (s core.IncrStats, ok bool) { return r.incr, r.incrSet }

// CellCounters returns the sharded-scheduler commit-protocol counters:
// commits, conflicts, conflicts avoided, retries, and rebalancer moves.
func (r *Recorder) CellCounters() (commits, conflicts, avoided, retries, moved int) {
	return r.cellCommits, r.cellConflicts, r.cellConflictsAvoided, r.cellRetries, r.cellJobsMoved
}

// Timeline returns the recorded snapshots.
func (r *Recorder) Timeline() []IntervalStats { return r.timeline }

// ObserveIntervalDuration records the wall-clock time of one full scheduling
// interval (estimator refits + allocate + place + deployment bookkeeping).
func (r *Recorder) ObserveIntervalDuration(seconds float64) { r.durInterval.Observe(seconds) }

// ObserveRefitDuration records the wall-clock time of one job's estimator
// refit (loss-curve NNLS + speed-model fit).
func (r *Recorder) ObserveRefitDuration(seconds float64) { r.durRefit.Observe(seconds) }

// ObserveAllocateDuration records the wall-clock time of one §4.1 allocation
// kernel invocation.
func (r *Recorder) ObserveAllocateDuration(seconds float64) { r.durAlloc.Observe(seconds) }

// ObservePlaceDuration records the wall-clock time of one §4.2 placement
// pass, including fragmentation retries.
func (r *Recorder) ObservePlaceDuration(seconds float64) { r.durPlace.Observe(seconds) }

// ObserveAPIDuration records the wall-clock latency of one optimusd API
// request.
func (r *Recorder) ObserveAPIDuration(seconds float64) { r.durAPI.Observe(seconds) }

// IntervalDuration exposes the interval-latency histogram for summaries.
func (r *Recorder) IntervalDuration() *obs.Histogram { return &r.durInterval }

// RefitDuration exposes the refit-latency histogram for summaries.
func (r *Recorder) RefitDuration() *obs.Histogram { return &r.durRefit }

// AllocateDuration exposes the allocate-latency histogram for summaries.
func (r *Recorder) AllocateDuration() *obs.Histogram { return &r.durAlloc }

// PlaceDuration exposes the place-latency histogram for summaries.
func (r *Recorder) PlaceDuration() *obs.Histogram { return &r.durPlace }

// APIDuration exposes the API-latency histogram for summaries.
func (r *Recorder) APIDuration() *obs.Histogram { return &r.durAPI }

// Summary is the digest of one experiment run.
type Summary struct {
	Completed   int
	AvgJCT      float64
	MedianJCT   float64
	P95JCT      float64
	StddevJCT   float64
	Makespan    float64
	ScalingFrac float64 // scaling overhead as a fraction of makespan (§6.2)
	// Fault/recovery digest (§5 resilience; zero on fault-free runs).
	FaultsInjected int
	TasksRestarted int
	WastedWork     float64 // job-seconds of recomputed progress
	RecoveryTime   float64 // job-seconds paused in checkpoint restores
}

// String implements fmt.Stringer. Fault/recovery counters are appended only
// when faults were injected, so fault-free output stays unchanged.
func (s Summary) String() string {
	out := fmt.Sprintf("jobs=%d avgJCT=%.0fs medJCT=%.0fs p95=%.0fs sd=%.0fs makespan=%.0fs scaling=%.2f%%",
		s.Completed, s.AvgJCT, s.MedianJCT, s.P95JCT, s.StddevJCT, s.Makespan, s.ScalingFrac*100)
	if s.FaultsInjected > 0 {
		out += fmt.Sprintf(" faults=%d restarts=%d wasted=%.0fs recovery=%.0fs",
			s.FaultsInjected, s.TasksRestarted, s.WastedWork, s.RecoveryTime)
	}
	return out
}

// JCT returns the completion time of one job, or NaN if incomplete.
func (r *Recorder) JCT(jobID int) float64 {
	c, ok := r.completions[jobID]
	if !ok {
		return math.NaN()
	}
	return c - r.arrivals[jobID]
}

// JCTs returns all completed jobs' JCTs sorted ascending.
func (r *Recorder) JCTs() []float64 {
	out := make([]float64, 0, len(r.completions))
	for id, c := range r.completions {
		out = append(out, c-r.arrivals[id])
	}
	sort.Float64s(out)
	return out
}

// Summarize computes the run digest. Jobs never completed are excluded from
// JCT statistics but the caller can detect them via Completed < submitted.
func (r *Recorder) Summarize() Summary {
	jcts := r.JCTs()
	s := Summary{
		Completed:      len(jcts),
		FaultsInjected: r.faults,
		TasksRestarted: r.restarts,
		WastedWork:     r.wastedWork,
		RecoveryTime:   r.recoveryTime,
	}
	if len(jcts) == 0 {
		return s
	}
	var sum float64
	for _, v := range jcts {
		sum += v
	}
	s.AvgJCT = sum / float64(len(jcts))
	s.MedianJCT = percentile(jcts, 0.5)
	s.P95JCT = percentile(jcts, 0.95)
	var ss float64
	for _, v := range jcts {
		d := v - s.AvgJCT
		ss += d * d
	}
	s.StddevJCT = math.Sqrt(ss / float64(len(jcts)))

	first := math.Inf(1)
	for _, a := range r.arrivals {
		if a < first {
			first = a
		}
	}
	last := math.Inf(-1)
	for _, c := range r.completions {
		if c > last {
			last = c
		}
	}
	if !math.IsInf(first, 1) && !math.IsInf(last, -1) {
		s.Makespan = last - first
	}
	if s.Makespan > 0 {
		s.ScalingFrac = r.scalingTime / s.Makespan
	}
	return s
}

// percentile returns the p-quantile of sorted values using linear
// interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

package metrics

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestExporterIdempotentPreamble is the regression test for repeated export:
// a scrape handler that calls WritePrometheus (or any Write* helper) more
// than once per response must emit each family's # HELP/# TYPE exactly once.
func TestExporterIdempotentPreamble(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0)
	r.ObserveAllocateDuration(3e-5)

	var buf bytes.Buffer
	e := NewExporter(&buf)
	if err := r.WritePrometheus(e); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(e); err != nil {
		t.Fatal(err)
	}
	if err := WriteGauge(e, "optimus_jobs_arrived_total", "Jobs submitted to the scheduler.", 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"optimus_jobs_arrived_total",
		"optimus_intervals_total",
		"optimus_allocate_duration_seconds",
	} {
		for _, preamble := range []string{"# HELP " + family + " ", "# TYPE " + family + " "} {
			if got := strings.Count(out, preamble); got != 1 {
				t.Errorf("%q appears %d times, want exactly 1:\n%s", preamble, got, out)
			}
		}
	}
	// Samples themselves are repeated — only the headers deduplicate.
	if got := strings.Count(out, "optimus_jobs_arrived_total 1"); got != 3 {
		t.Errorf("sample emitted %d times, want 3", got)
	}
}

func TestNewExporterIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	e := NewExporter(&buf)
	if NewExporter(e) != e {
		t.Error("NewExporter(Exporter) did not return the same exporter")
	}
}

// TestWritePrometheusHistograms checks the histogram family shape: all
// buckets cumulative, terminal +Inf equal to _count, and plain-writer export
// (no Exporter) still emits exactly one preamble per call.
func TestWritePrometheusHistograms(t *testing.T) {
	r := NewRecorder()
	r.ObserveIntervalDuration(0.002)
	r.ObserveIntervalDuration(0.5)
	r.ObserveAPIDuration(1e-4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.Contains(out, "# TYPE optimus_interval_duration_seconds histogram") {
		t.Errorf("missing histogram TYPE:\n%s", out)
	}
	if !strings.Contains(out, `optimus_interval_duration_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket with full count:\n%s", out)
	}
	if !strings.Contains(out, "optimus_interval_duration_seconds_count 2") {
		t.Errorf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "optimus_interval_duration_seconds_sum 0.502") {
		t.Errorf("missing _sum:\n%s", out)
	}
	if !strings.Contains(out, `optimus_api_request_duration_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("missing API histogram:\n%s", out)
	}
	// Empty histograms stay silent.
	if strings.Contains(out, "optimus_place_duration_seconds") {
		t.Errorf("empty histogram exported:\n%s", out)
	}

	// Bucket counts must be monotonically non-decreasing.
	prev := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "optimus_interval_duration_seconds_bucket") {
			continue
		}
		n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		prev = n
	}
	if prev != 2 {
		t.Errorf("final bucket count %d, want 2", prev)
	}
}

package metrics

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// metricLine matches one sample line of the Prometheus text format.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9][0-9eE+.\-]*$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRecorder()
	r.Arrive(1, 0)
	r.Arrive(2, 100)
	r.Complete(1, 700)
	r.AddScalingTime(42.5)
	r.AddFault()
	r.AddFault()
	r.AddRestarts(3)
	r.AddWastedWork(12)
	r.AddRecoveryTime(7)
	r.Snapshot(IntervalStats{
		Time: 600, RunningTasks: 9, RunningJobs: 2, WaitingJobs: 1,
		WorkerUtil: 0.75, PSUtil: 0.5, ClusterShare: 0.625,
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	want := map[string]string{
		"optimus_jobs_arrived_total":          "2",
		"optimus_jobs_completed_total":        "1",
		"optimus_intervals_total":             "1",
		"optimus_scaling_time_seconds_total":  "42.5",
		"optimus_faults_injected_total":       "2",
		"optimus_tasks_restarted_total":       "3",
		"optimus_wasted_work_seconds_total":   "12",
		"optimus_recovery_time_seconds_total": "7",
		"optimus_running_jobs":                "2",
		"optimus_waiting_jobs":                "1",
		"optimus_running_tasks":               "9",
		"optimus_worker_utilization":          "0.75",
		"optimus_ps_utilization":              "0.5",
		"optimus_cluster_share":               "0.625",
	}
	got := map[string]string{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name, val, _ := strings.Cut(line, " ")
		got[name] = val
		// Every sample must be preceded by HELP and TYPE comments.
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Errorf("missing HELP for %s", name)
		}
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE for %s", name)
		}
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %q, want %q", name, got[name], v)
		}
	}
}

func TestWritePrometheusEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimus_jobs_arrived_total 0\n") {
		t.Errorf("missing zero arrivals counter in:\n%s", out)
	}
	// No timeline yet → no interval gauges.
	if strings.Contains(out, "optimus_running_jobs") {
		t.Errorf("unexpected interval gauges on empty recorder:\n%s", out)
	}
}

func TestWriteCounterGauge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCounter(&buf, "x_total", "Help text.", 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteGauge(&buf, "y", "More help.", 0.5); err != nil {
		t.Fatal(err)
	}
	want := "# HELP x_total Help text.\n# TYPE x_total counter\nx_total 3\n" +
		"# HELP y More help.\n# TYPE y gauge\ny 0.5\n"
	if buf.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

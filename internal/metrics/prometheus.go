package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text-format export (version 0.0.4). The daemon's /metrics
// endpoint, the operator's -metrics-addr server and any future scraper share
// these helpers so every component emits the same metric families in the
// same shape.

// writeMetric emits one metric with its HELP/TYPE preamble.
func writeMetric(w io.Writer, name, help, typ string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(v, 'g', -1, 64))
	return err
}

// WriteCounter writes one counter metric in Prometheus text format.
func WriteCounter(w io.Writer, name, help string, v float64) error {
	return writeMetric(w, name, help, "counter", v)
}

// WriteGauge writes one gauge metric in Prometheus text format.
func WriteGauge(w io.Writer, name, help string, v float64) error {
	return writeMetric(w, name, help, "gauge", v)
}

// WritePrometheus exports the recorder's counters and the latest interval
// snapshot in Prometheus text format. The recorder is not synchronized;
// callers that mutate it concurrently (the optimusd event loop) must hold
// their own lock around both the mutations and this export.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	type metric struct {
		name, help, typ string
		v               float64
	}
	ms := []metric{
		{"optimus_jobs_arrived_total", "Jobs submitted to the scheduler.", "counter", float64(len(r.arrivals))},
		{"optimus_jobs_completed_total", "Jobs that reached convergence.", "counter", float64(len(r.completions))},
		{"optimus_intervals_total", "Scheduling intervals recorded.", "counter", float64(len(r.timeline))},
		{"optimus_scaling_time_seconds_total", "Job-seconds spent in checkpoint/restart rescaling pauses.", "counter", r.scalingTime},
		{"optimus_faults_injected_total", "Faults injected into the run.", "counter", float64(r.faults)},
		{"optimus_tasks_restarted_total", "Tasks restarted by fault recovery.", "counter", float64(r.restarts)},
		{"optimus_wasted_work_seconds_total", "Job-seconds of progress lost to failures and recomputed.", "counter", r.wastedWork},
		{"optimus_recovery_time_seconds_total", "Job-seconds paused in checkpoint-restore recovery.", "counter", r.recoveryTime},
	}
	if n := len(r.timeline); n > 0 {
		last := r.timeline[n-1]
		ms = append(ms,
			metric{"optimus_running_jobs", "Jobs with tasks deployed in the last interval.", "gauge", float64(last.RunningJobs)},
			metric{"optimus_waiting_jobs", "Admitted jobs without a deployment in the last interval.", "gauge", float64(last.WaitingJobs)},
			metric{"optimus_running_tasks", "PS + worker tasks deployed in the last interval.", "gauge", float64(last.RunningTasks)},
			metric{"optimus_worker_utilization", "Mean normalized worker CPU utilization in the last interval.", "gauge", last.WorkerUtil},
			metric{"optimus_ps_utilization", "Mean normalized PS CPU utilization in the last interval.", "gauge", last.PSUtil},
			metric{"optimus_cluster_share", "Fraction of total cluster CPU allocated in the last interval.", "gauge", last.ClusterShare},
		)
	}
	for _, m := range ms {
		if err := writeMetric(w, m.name, m.help, m.typ, m.v); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"fmt"
	"io"
	"strconv"

	"optimus/internal/obs"
)

// Prometheus text-format export (version 0.0.4). The daemon's /metrics
// endpoint, the operator's -metrics-addr server and any future scraper share
// these helpers so every component emits the same metric families in the
// same shape.

// Exporter wraps an io.Writer and remembers which metric families have had
// their # HELP/# TYPE preamble emitted. The text format allows each family
// header at most once per exposition, so endpoints that compose several
// Write* calls (or call WritePrometheus alongside their own gauges) route
// them all through one Exporter and stay valid however often each family
// recurs. The plain io.Writer path is unchanged: every call emits its own
// preamble, exactly as before.
type Exporter struct {
	w    io.Writer
	seen map[string]struct{}
}

// NewExporter wraps w for deduplicated export. Passing an *Exporter returns
// it unchanged, so helpers can normalize their writer unconditionally.
func NewExporter(w io.Writer) *Exporter {
	if e, ok := w.(*Exporter); ok {
		return e
	}
	return &Exporter{w: w, seen: make(map[string]struct{})}
}

// Write passes through to the underlying writer, making Exporter usable
// anywhere an io.Writer is expected.
func (e *Exporter) Write(p []byte) (int, error) { return e.w.Write(p) }

// preamble emits the HELP/TYPE header for name once per Exporter lifetime.
func (e *Exporter) preamble(name, help, typ string) error {
	if _, ok := e.seen[name]; ok {
		return nil
	}
	e.seen[name] = struct{}{}
	_, err := fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// writePreamble emits the family header, deduplicating when w is an
// Exporter.
func writePreamble(w io.Writer, name, help, typ string) error {
	if e, ok := w.(*Exporter); ok {
		return e.preamble(name, help, typ)
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// writeMetric emits one metric with its HELP/TYPE preamble.
func writeMetric(w io.Writer, name, help, typ string, v float64) error {
	if err := writePreamble(w, name, help, typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	return err
}

// WriteCounter writes one counter metric in Prometheus text format.
func WriteCounter(w io.Writer, name, help string, v float64) error {
	return writeMetric(w, name, help, "counter", v)
}

// WriteGauge writes one gauge metric in Prometheus text format.
func WriteGauge(w io.Writer, name, help string, v float64) error {
	return writeMetric(w, name, help, "gauge", v)
}

// WriteLabeledGauge writes one gauge sample with a single label pair. The
// family preamble is deduplicated through Exporter, so callers can emit one
// sample per label value (e.g. per scheduling cell) in a loop.
func WriteLabeledGauge(w io.Writer, name, help, label, value string, v float64) error {
	if err := writePreamble(w, name, help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, value,
		strconv.FormatFloat(v, 'g', -1, 64))
	return err
}

// WriteInfoGauge writes one constant "info"-style gauge sample (value 1)
// carrying an arbitrary set of label pairs, e.g. optimus_build_info. Labels
// are emitted in the order given.
func WriteInfoGauge(w io.Writer, name, help string, labels [][2]string) error {
	if err := writePreamble(w, name, help, "gauge"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name+"{"); err != nil {
		return err
	}
	for i, kv := range labels {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s=%q", sep, kv[0], kv[1]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "} 1\n")
	return err
}

// WriteHistogram writes one obs.Histogram as a Prometheus histogram family:
// cumulative _bucket{le="..."} samples for every log bucket, then _sum and
// _count.
func WriteHistogram(w io.Writer, name, help string, h *obs.Histogram) error {
	if err := writePreamble(w, name, help, "histogram"); err != nil {
		return err
	}
	for i := 0; i <= obs.HistBuckets; i++ {
		le := "+Inf"
		if i < obs.HistBuckets {
			le = strconv.FormatFloat(obs.BucketBound(i), 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, h.CumulativeCount(i)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name,
		strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// WritePrometheus exports the recorder's counters, the latest interval
// snapshot, and any non-empty latency histograms in Prometheus text format.
// The recorder is not synchronized; callers that mutate it concurrently (the
// optimusd event loop) must hold their own lock around both the mutations
// and this export.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	type metric struct {
		name, help, typ string
		v               float64
	}
	ms := []metric{
		{"optimus_jobs_arrived_total", "Jobs submitted to the scheduler.", "counter", float64(len(r.arrivals))},
		{"optimus_jobs_completed_total", "Jobs that reached convergence.", "counter", float64(len(r.completions))},
		{"optimus_intervals_total", "Scheduling intervals recorded.", "counter", float64(len(r.timeline))},
		{"optimus_scaling_time_seconds_total", "Job-seconds spent in checkpoint/restart rescaling pauses.", "counter", r.scalingTime},
		{"optimus_faults_injected_total", "Faults injected into the run.", "counter", float64(r.faults)},
		{"optimus_tasks_restarted_total", "Tasks restarted by fault recovery.", "counter", float64(r.restarts)},
		{"optimus_wasted_work_seconds_total", "Job-seconds of progress lost to failures and recomputed.", "counter", r.wastedWork},
		{"optimus_recovery_time_seconds_total", "Job-seconds paused in checkpoint-restore recovery.", "counter", r.recoveryTime},
	}
	// Sharded-scheduler families appear only once the cells commit path has
	// run, so single-engine expositions are byte-for-byte unchanged.
	if r.cellCommits > 0 || r.cellConflicts > 0 || r.cellJobsMoved > 0 {
		ms = append(ms,
			metric{"optimus_cell_commits_total", "Optimistic grant commits applied to the shared-state store.", "counter", float64(r.cellCommits)},
			metric{"optimus_cell_conflicts_total", "Grant commits rejected at revalidation.", "counter", float64(r.cellConflicts)},
			metric{"optimus_cell_conflicts_avoided_total", "Stale-snapshot commits that revalidated and landed.", "counter", float64(r.cellConflictsAvoided)},
			metric{"optimus_cell_commit_retries_total", "Re-place attempts after conflicted commits.", "counter", float64(r.cellRetries)},
			metric{"optimus_cell_jobs_moved_total", "Jobs migrated between cells by the rebalancer.", "counter", float64(r.cellJobsMoved)},
		)
	}
	// Incremental-scheduler families appear only once a delta-driven session
	// has reported, so existing expositions are byte-for-byte unchanged.
	if r.incrSet {
		ms = append(ms,
			metric{"optimus_incr_alloc_clean_total", "Scheduling intervals where the allocator returned its cached output untouched.", "counter", float64(r.incr.AllocClean)},
			metric{"optimus_incr_alloc_incremental_total", "Scheduling intervals where only the dirty jobs were re-allocated.", "counter", float64(r.incr.AllocIncremental)},
			metric{"optimus_incr_alloc_full_total", "Scheduling intervals that ran the full from-scratch allocation kernel.", "counter", float64(r.incr.AllocFull)},
			metric{"optimus_incr_dirty_jobs_total", "Jobs re-allocated across all incremental intervals.", "counter", float64(r.incr.DirtyJobs)},
			metric{"optimus_incr_place_clean_total", "Scheduling intervals where the cached placement was reused untouched.", "counter", float64(r.incr.PlaceClean)},
			metric{"optimus_incr_place_partial_total", "Scheduling intervals where only a suffix of the placement order was re-placed.", "counter", float64(r.incr.PlacePartial)},
			metric{"optimus_incr_place_full_total", "Scheduling intervals that ran the full from-scratch placement kernel.", "counter", float64(r.incr.PlaceFull)},
			metric{"optimus_incr_tasks_migrated_total", "Previously-running tasks whose node assignment changed.", "counter", float64(r.incr.TasksMigrated)},
			metric{"optimus_incr_last_dirty_jobs", "Dirty-set size of the last scheduling interval.", "gauge", float64(r.incr.LastDirty)},
			metric{"optimus_incr_last_tasks_migrated", "Tasks migrated in the last scheduling interval.", "gauge", float64(r.incr.LastMigrated)},
		)
	}
	if n := len(r.timeline); n > 0 {
		last := r.timeline[n-1]
		ms = append(ms,
			metric{"optimus_running_jobs", "Jobs with tasks deployed in the last interval.", "gauge", float64(last.RunningJobs)},
			metric{"optimus_waiting_jobs", "Admitted jobs without a deployment in the last interval.", "gauge", float64(last.WaitingJobs)},
			metric{"optimus_running_tasks", "PS + worker tasks deployed in the last interval.", "gauge", float64(last.RunningTasks)},
			metric{"optimus_worker_utilization", "Mean normalized worker CPU utilization in the last interval.", "gauge", last.WorkerUtil},
			metric{"optimus_ps_utilization", "Mean normalized PS CPU utilization in the last interval.", "gauge", last.PSUtil},
			metric{"optimus_cluster_share", "Fraction of total cluster CPU allocated in the last interval.", "gauge", last.ClusterShare},
		)
	}
	for _, m := range ms {
		if err := writeMetric(w, m.name, m.help, m.typ, m.v); err != nil {
			return err
		}
	}
	hists := []struct {
		name, help string
		h          *obs.Histogram
	}{
		{"optimus_interval_duration_seconds", "Wall-clock time of one full scheduling interval.", &r.durInterval},
		{"optimus_refit_duration_seconds", "Wall-clock time of one job's loss/speed estimator refit.", &r.durRefit},
		{"optimus_allocate_duration_seconds", "Wall-clock time of the marginal-gain allocation kernel.", &r.durAlloc},
		{"optimus_place_duration_seconds", "Wall-clock time of the placement pass, including retries.", &r.durPlace},
		{"optimus_api_request_duration_seconds", "Wall-clock latency of optimusd API requests.", &r.durAPI},
	}
	for _, hm := range hists {
		if hm.h.Count() == 0 {
			continue
		}
		if err := WriteHistogram(w, hm.name, hm.help, hm.h); err != nil {
			return err
		}
	}
	return nil
}

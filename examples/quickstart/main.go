// Quickstart walks the Optimus pipeline end to end on one job:
//
//  1. collect training-loss points and fit the §3.1 convergence model to
//     estimate the remaining work Q;
//  2. profile a few (p, w) configurations and fit the §3.2 speed model;
//  3. hand both to the §4.1 marginal-gain allocator;
//  4. place the granted tasks with the §4.2 Theorem-1 scheme.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

func main() {
	log.SetFlags(0)

	// The job: ResNet-50, synchronous training. In a real deployment the
	// loss points and speed samples come from the running job; here the
	// workload package's calibrated physics plays the cluster.
	model := workload.ZooByName("resnet-50")
	mode := speedfit.Sync

	// --- step 1: convergence estimation (§3.1) ---
	fitter := lossfit.NewFitter()
	for epoch := 1.0; epoch <= 12; epoch++ {
		if err := fitter.Add(epoch, model.TrueLoss(epoch)); err != nil {
			log.Fatal(err)
		}
	}
	lossModel, err := fitter.Fit()
	if err != nil {
		log.Fatal(err)
	}
	totalEpochs, err := lossModel.StepsToConverge(0.02, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	remaining := totalEpochs - 12
	fmt.Printf("convergence model: l(k) = 1/(%.3f·k + %.3f) + %.3f\n",
		lossModel.B0, lossModel.B1, lossModel.B2)
	fmt.Printf("predicted total epochs: %.1f → remaining after 12: %.1f\n",
		totalEpochs, remaining)

	// --- step 2: speed model from a handful of sample runs (§3.2) ---
	est := speedfit.NewEstimator(mode, float64(model.GlobalBatch))
	for _, c := range speedfit.SamplingPlan(5, 24) {
		if err := est.Observe(c[0], c[1], model.TrueSpeed(mode, c[0], c[1])); err != nil {
			log.Fatal(err)
		}
	}
	speedModel, err := est.Fit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speed model coefficients: %v\n", speedModel.Theta)
	fmt.Printf("predicted speed at (p=8,w=12): %.4f steps/s (truth %.4f)\n",
		speedModel.Speed(8, 12), model.TrueSpeed(mode, 8, 12))

	// --- step 3: marginal-gain allocation (§4.1) ---
	stepsPerEpoch := float64(model.StepsPerEpoch(mode, 1, 1))
	job := &core.JobInfo{
		ID:            0,
		RemainingWork: remaining * stepsPerEpoch, // Q in steps
		Speed:         func(p, w int) float64 { return speedModel.Speed(p, w) },
		WorkerRes:     model.WorkerRes,
		PSRes:         model.PSRes,
		MaxWorkers:    model.GlobalBatch,
	}
	testbed := cluster.Testbed()
	alloc := core.Allocate([]*core.JobInfo{job}, testbed.Capacity())
	a := alloc[0]
	fmt.Printf("allocation: %d parameter servers, %d workers\n", a.PS, a.Workers)

	// --- step 4: Theorem-1 placement (§4.2) ---
	placements, unplaced := core.Place([]core.PlacementRequest{{
		JobID: 0, Alloc: a, WorkerRes: job.WorkerRes, PSRes: job.PSRes,
	}}, testbed)
	if len(unplaced) > 0 {
		log.Fatalf("job could not be placed")
	}
	pl := placements[0]
	fmt.Printf("placement over %d servers:\n", pl.Servers())
	for i, node := range pl.NodeIDs {
		fmt.Printf("  %-7s %d ps, %d workers\n", node, pl.PSOnNode[i], pl.WorkersOnNode[i])
	}

	eta := job.RemainingWork / speedModel.Speed(a.PS, a.Workers)
	fmt.Printf("estimated time to convergence: %.0f s\n", eta)
}

// Clustersim compares Optimus against the DRF fairness scheduler and Tetris
// on a simulated deep-learning cluster — a compact version of the §6.2
// evaluation. It generates a random Table-1 job mix, replays it under each
// policy on the paper's 13-server testbed, and reports JCT, makespan,
// utilization and scaling overhead.
//
// Run with: go run ./examples/clustersim
package main

import (
	"fmt"
	"log"

	"optimus/internal/cluster"
	"optimus/internal/sim"
	"optimus/internal/workload"
)

func main() {
	log.SetFlags(0)

	jobs := workload.Generate(workload.GenConfig{
		N:         15,
		Horizon:   4000,
		Seed:      7,
		Downscale: 0.03,
	})
	fmt.Printf("workload: %d jobs over %d s\n", len(jobs), 4000)
	for _, j := range jobs[:5] {
		fmt.Printf("  %v\n", j)
	}
	fmt.Println("  ...")

	policies := []sim.Policy{sim.OptimusPolicy(), sim.DRFPolicy(), sim.TetrisPolicy()}
	fmt.Printf("\n%-8s  %10s  %12s  %10s  %9s\n",
		"policy", "avg JCT", "makespan", "intervals", "scaling%")
	var baseJCT float64
	for _, p := range policies {
		res, err := sim.Run(sim.Config{
			Cluster:           cluster.Testbed(),
			Jobs:              jobs,
			Policy:            p,
			Interval:          600,
			Seed:              1,
			PreRunSamples:     5,
			SpeedNoise:        0.03,
			LossNoise:         0.01,
			PriorityFactor:    0.95,
			ScalingBase:       12,
			ScalingPerTask:    0.3,
			ReconfigThreshold: 0.15,
		})
		if err != nil {
			log.Fatal(err)
		}
		if p.Name == "optimus" {
			baseJCT = res.Summary.AvgJCT
		}
		fmt.Printf("%-8s  %8.0f s  %10.0f s  %10d  %8.2f%%\n",
			p.Name, res.Summary.AvgJCT, res.Summary.Makespan,
			res.Intervals, res.Summary.ScalingFrac*100)
		if p.Name != "optimus" {
			fmt.Printf("          (%.2fx the Optimus average JCT)\n",
				res.Summary.AvgJCT/baseJCT)
		}
	}
}

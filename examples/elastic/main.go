// Elastic demonstrates §5's system mechanisms on a real training job: a
// parameter-server run with a deliberately slow worker, straggler detection
// and replacement (§5.2), and a checkpoint-based elastic rescale (§5.4) with
// HDFS-style chunk reassignment (§5.1) — the operations Optimus performs
// every scheduling interval.
//
// Run with: go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"optimus/internal/psys"
	"optimus/internal/speedfit"
)

func main() {
	log.SetFlags(0)

	data, truth, err := psys.SyntheticRegression(3000, 48, 0.01, 42)
	if err != nil {
		log.Fatal(err)
	}
	_ = truth

	job, err := psys.StartJob(psys.JobConfig{
		Model:     psys.LinearRegression{Features: 48},
		Data:      data,
		Mode:      speedfit.Sync,
		Workers:   3,
		Servers:   2,
		BatchSize: 32,
		LR:        0.05,
		Seed:      42,
		// Worker 1 is a straggler: 10 ms of extra work per step.
		WorkerDelays: map[int]time.Duration{1: 10 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	phase := func(name string, j *psys.Job, steps int) []psys.StepStat {
		start := time.Now()
		stats, err := j.RunSteps(steps)
		if err != nil {
			log.Fatal(err)
		}
		loss, err := j.Loss()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %3d steps in %8v   loss=%.6f\n",
			name, steps, time.Since(start).Round(time.Millisecond), loss)
		return stats
	}

	// Phase 1: the straggler throttles every synchronous round.
	stats := phase("with straggler", job, 60)

	// §5.2: detect via gradient-production times and replace.
	stragglers := psys.DetectStragglers(stats)
	fmt.Printf("detected stragglers: %v\n", stragglers)
	for _, id := range stragglers {
		if err := job.ReplaceWorker(id); err != nil {
			log.Fatal(err)
		}
	}
	phase("after replacement", job, 60)

	// §5.4: the scheduler granted us more resources — checkpoint, stop,
	// restart with 6 workers and 3 servers.
	ckpt := filepath.Join(os.TempDir(), "optimus-elastic.ckpt")
	defer os.Remove(ckpt)
	bigger, err := psys.Scale(job, 6, 3, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	defer bigger.Stop()
	fmt.Printf("scaled to %d workers / %d servers; resumed at round %d; chunk imbalance %d examples\n",
		bigger.Workers(), bigger.Servers(), bigger.Rounds(), bigger.ChunkImbalance())
	phase("after scale-out", bigger, 60)

	// Scaling down works the same way (night-time shrink).
	smaller, err := psys.Scale(bigger, 2, 1, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	defer smaller.Stop()
	fmt.Printf("scaled to %d workers / %d server\n", smaller.Workers(), smaller.Servers())
	phase("after scale-in", smaller, 60)
}

// Distributed runs one training job across coordinator, parameter-server
// and worker *nodes* that speak only TCP — the deployment shape of the
// paper's testbed, where every task is its own container. Here the nodes
// share a process for convenience; cmd/optimus-ps -role runs the same code
// as separate OS processes.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"optimus/internal/psys"
	"optimus/internal/speedfit"
)

func main() {
	log.SetFlags(0)

	// The coordinator owns the job spec, dataset, §5.3 block assignment and
	// §5.1 chunk assignment.
	coord, err := psys.StartCoordinator(psys.DistSpec{
		ModelSpec: "mlp:8x16", // a real neural net, trained over the wire
		Mode:      speedfit.Sync,
		Workers:   3,
		Servers:   2,
		BatchSize: 32,
		LR:        0.05,
		Momentum:  0.9,
		Seed:      11,
		Examples:  1500,
		Noise:     0.01,
	}, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s\n", coord.Addr())

	// Parameter-server nodes register and receive their blocks + initial
	// parameters.
	for i := 0; i < 2; i++ {
		s, err := psys.RunDistServer(coord.Addr(), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		fmt.Printf("parameter server %d serving on %s\n", s.Index, s.Addr())
	}

	// Worker nodes register (receiving server endpoints and data shards) and
	// train; every step reports loss + compute time back to the coordinator.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := psys.RunDistWorker(coord.Addr())
			if err != nil {
				log.Fatal(err)
			}
			defer w.Close()
			loss, err := w.Steps(120)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("worker %d finished, final batch loss %.5f\n", w.ID, loss)
		}()
	}
	wg.Wait()

	st := coord.Status()
	fmt.Printf("coordinator saw %d reports from %d workers; last loss %.5f\n",
		st.Reports, st.WorkersJoined, st.LastLoss)
	for id, ns := range st.MeanComputeNS {
		fmt.Printf("  worker %d mean gradient time: %dµs\n", id, ns/1000)
	}
}

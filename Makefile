# Optimus reproduction — common tasks.

GO ?= go

.PHONY: all build vet test race bench bench-diff bench-all loadbench load-smoke failover-smoke quick full fuzz serve load smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# internal/experiments runs its parallel worker pool under the detector;
# internal/serve includes the 1000-submission daemon load test.
race:
	$(GO) test -race ./internal/core/ ./internal/psys/ ./internal/kube/ ./internal/operator/ ./internal/sim/ ./internal/chaos/ ./internal/experiments/ ./internal/serve/ ./internal/obs/ ./internal/cells/ ./internal/wal/ ./internal/ha/

# Micro-benchmarks of the core algorithms, recorded as the repo's perf
# trajectory: BENCH_1.json is the first point; bump N for later snapshots
# and compare ns/op and allocs/op against the committed history.
BENCH_MICRO = ^(BenchmarkAllocate|BenchmarkPlace|BenchmarkLossFit|BenchmarkSpeedFit|BenchmarkNNLS|BenchmarkPAA|BenchmarkPSStep|BenchmarkCells|BenchmarkIncrementalInterval|BenchmarkSubmitWAL)$$
BENCH_OUT ?= BENCH_7.json
BENCH_BASE ?= BENCH_6.json

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Like bench, but also print per-benchmark ns/op and allocs/op deltas against
# the previous committed snapshot.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -diff $(BENCH_BASE)

# One benchmark per paper table/figure plus micro-benchmarks; prints the
# regenerated rows.
bench-all:
	$(GO) test -bench=. -benchmem .

# Serving-path load benchmark: single-mutex vs sharded in-process
# before/after plus open-loop optimusd-load runs at -cells 1/4/8, recorded
# as BENCH_6.json. DIFF=BENCH_6.json prints advisory deltas vs the
# committed record; DUR/RATE/CLIENTS tune the open-loop phase.
loadbench:
	./scripts/loadbench.sh

# 10s open-loop smoke at -cells 1 and 4: zero errors, bounded p99. CI gate.
load-smoke:
	./scripts/smoke_load.sh

# HA failover smoke: leader + warm standby on one WAL dir, kill -9 the
# leader under open-loop load, assert takeover within one lease TTL and
# exactly-once admission across the cutover. Runs under -race. CI gate.
failover-smoke:
	./scripts/smoke_failover.sh

# Fast smoke reproduction of every exhibit.
quick:
	$(GO) run ./cmd/optimus-sim -quick all

# Paper-scale reproduction of every exhibit (several minutes).
full:
	$(GO) run ./cmd/optimus-sim all

fuzz:
	$(GO) test -fuzz FuzzSolve -fuzztime 15s ./internal/nnls/
	$(GO) test -fuzz FuzzPAA -fuzztime 15s ./internal/psassign/
	$(GO) test -fuzz FuzzReadJobs -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 15s ./internal/chaos/
	$(GO) test -fuzz FuzzDecodeSubmit -fuzztime 15s ./internal/serve/
	$(GO) test -fuzz FuzzChromeTrace -fuzztime 15s ./internal/obs/
	$(GO) test -fuzz FuzzCellCommit -fuzztime 15s ./internal/cells/
	$(GO) test -fuzz FuzzIncrementalChurn -fuzztime 15s ./internal/core/
	$(GO) test -fuzz FuzzWALDecode -fuzztime 15s ./internal/wal/

# Run the online scheduler daemon on the paper testbed (600x scaled time).
serve:
	$(GO) run ./cmd/optimusd -addr :8080 -tick 1s

# Fire 1000 concurrent submissions at a daemon started with `make serve`.
load:
	$(GO) run ./cmd/optimusd-load -url http://localhost:8080 -n 1000 -c 64

# End-to-end daemon smoke: boot on a random port, submit, poll, snapshot,
# restore. Used by CI.
smoke:
	./scripts/smoke_optimusd.sh

clean:
	rm -rf internal/*/testdata/fuzz

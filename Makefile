# Optimus reproduction — common tasks.

GO ?= go

.PHONY: all build vet test race bench bench-diff bench-all quick full fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# internal/experiments runs its parallel worker pool under the detector.
race:
	$(GO) test -race ./internal/psys/ ./internal/kube/ ./internal/operator/ ./internal/sim/ ./internal/chaos/ ./internal/experiments/

# Micro-benchmarks of the core algorithms, recorded as the repo's perf
# trajectory: BENCH_1.json is the first point; bump N for later snapshots
# and compare ns/op and allocs/op against the committed history.
BENCH_MICRO = ^(BenchmarkAllocate|BenchmarkPlace|BenchmarkLossFit|BenchmarkSpeedFit|BenchmarkNNLS|BenchmarkPAA|BenchmarkPSStep)$$
BENCH_OUT ?= BENCH_2.json
BENCH_BASE ?= BENCH_1.json

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Like bench, but also print per-benchmark ns/op and allocs/op deltas against
# the previous committed snapshot.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -diff $(BENCH_BASE)

# One benchmark per paper table/figure plus micro-benchmarks; prints the
# regenerated rows.
bench-all:
	$(GO) test -bench=. -benchmem .

# Fast smoke reproduction of every exhibit.
quick:
	$(GO) run ./cmd/optimus-sim -quick all

# Paper-scale reproduction of every exhibit (several minutes).
full:
	$(GO) run ./cmd/optimus-sim all

fuzz:
	$(GO) test -fuzz FuzzSolve -fuzztime 15s ./internal/nnls/
	$(GO) test -fuzz FuzzPAA -fuzztime 15s ./internal/psassign/
	$(GO) test -fuzz FuzzReadJobs -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 15s ./internal/chaos/

clean:
	rm -rf internal/*/testdata/fuzz

# Optimus reproduction — common tasks.

GO ?= go

.PHONY: all build vet test race bench quick full fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/psys/ ./internal/kube/ ./internal/operator/ ./internal/sim/ ./internal/chaos/

# One benchmark per paper table/figure plus micro-benchmarks; prints the
# regenerated rows.
bench:
	$(GO) test -bench=. -benchmem .

# Fast smoke reproduction of every exhibit.
quick:
	$(GO) run ./cmd/optimus-sim -quick all

# Paper-scale reproduction of every exhibit (several minutes).
full:
	$(GO) run ./cmd/optimus-sim all

fuzz:
	$(GO) test -fuzz FuzzSolve -fuzztime 15s ./internal/nnls/
	$(GO) test -fuzz FuzzPAA -fuzztime 15s ./internal/psassign/
	$(GO) test -fuzz FuzzReadJobs -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 15s ./internal/chaos/

clean:
	rm -rf internal/*/testdata/fuzz

// Package optimus's root benchmark harness regenerates every table and
// figure of the paper (see DESIGN.md's experiment index) and micro-benchmarks
// the core algorithms. Each BenchmarkFigN/BenchmarkTableN prints the
// regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. Benchmarks use the experiments package's
// quick mode; use cmd/optimus-sim for paper-scale sweeps.
package optimus

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/experiments"
	"optimus/internal/lossfit"
	"optimus/internal/nnls"
	"optimus/internal/obs"
	"optimus/internal/psassign"
	"optimus/internal/psys"
	"optimus/internal/serve"
	"optimus/internal/sim"
	"optimus/internal/speedfit"
	"optimus/internal/wal"
	"optimus/internal/workload"
)

var printOnce sync.Map // experiment id → *sync.Once

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		onceI, _ := printOnce.LoadOrStore(id, &sync.Once{})
		onceI.(*sync.Once).Do(func() { tbl.Print(os.Stdout) })
	}
}

// --- one benchmark per paper exhibit ---

func BenchmarkTable1Workloads(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig1TrainingCurves(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig2TrainingTimes(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig4SpeedVsConfig(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5LossCurves(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6PredictionError(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7OnlineFitting(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8SampleEfficiency(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9SpeedFunctions(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTable2Coefficients(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig11Comparison(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12Scalability(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13Stats(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkFig14Timelines(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15ErrorSensitivity(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16TrainingModes(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkFig17ArrivalProcesses(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18AllocAblation(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19PlacementAblation(b *testing.B) {
	benchExperiment(b, "fig19")
}
func BenchmarkTable3ParamDistribution(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig10PlacementExample(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkAblationPriority(b *testing.B)        { benchExperiment(b, "ablation-priority") }
func BenchmarkStragglerStudy(b *testing.B)          { benchExperiment(b, "stragglers") }
func BenchmarkMixedWorkloads(b *testing.B)          { benchExperiment(b, "mixed") }
func BenchmarkFig20LoadBalanceSpeed(b *testing.B)   { benchExperiment(b, "fig20") }
func BenchmarkFig21PAASpeedup(b *testing.B)         { benchExperiment(b, "fig21") }
func BenchmarkOverheadScaling(b *testing.B)         { benchExperiment(b, "overhead") }

// --- core-algorithm micro-benchmarks ---

// BenchmarkAllocate measures one §4.1 marginal-gain allocation pass at the
// scale Fig. 12 reports (jobs × a large cluster).
func BenchmarkAllocate(b *testing.B) {
	for _, nJobs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("jobs=%d", nJobs), func(b *testing.B) {
			zoo := workload.Zoo()
			rng := rand.New(rand.NewSource(1))
			jobs := make([]*core.JobInfo, nJobs)
			for i := range jobs {
				m := zoo[i%len(zoo)]
				mode := speedfit.Mode(rng.Intn(2))
				jobs[i] = &core.JobInfo{
					ID:            i,
					RemainingWork: 1000 + rng.Float64()*100000,
					Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
					WorkerRes:     m.WorkerRes,
					PSRes:         m.PSRes,
					MaxWorkers:    16,
					MaxPS:         16,
				}
			}
			capacity := cluster.Resources{
				cluster.CPU:    float64(nJobs) * 40,
				cluster.Memory: float64(nJobs) * 160,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Allocate(jobs, capacity)
			}
		})
	}
}

// BenchmarkPlace measures one §4.2 placement pass.
func BenchmarkPlace(b *testing.B) {
	for _, nNodes := range []int{100, 1000} {
		b.Run(fmt.Sprintf("nodes=%d", nNodes), func(b *testing.B) {
			reqs := make([]core.PlacementRequest, 50)
			for i := range reqs {
				reqs[i] = core.PlacementRequest{
					JobID: i,
					Alloc: core.Allocation{PS: 2 + i%3, Workers: 3 + i%5},
					WorkerRes: cluster.Resources{
						cluster.CPU: 5, cluster.Memory: 10,
					},
					PSRes: cluster.Resources{
						cluster.CPU: 3, cluster.Memory: 8,
					},
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := cluster.Uniform(nNodes, cluster.Resources{
					cluster.CPU: 32, cluster.Memory: 128,
				})
				b.StartTimer()
				core.Place(reqs, c)
			}
		})
	}
}

// BenchmarkLossFit measures one §3.1 online refit over a realistic number of
// accumulated loss points.
func BenchmarkLossFit(b *testing.B) {
	m := workload.ZooByName("seq2seq")
	pts := make([]lossfit.Point, 200)
	for i := range pts {
		e := float64(i + 1)
		pts[i] = lossfit.Point{K: e, Loss: m.TrueLoss(e)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lossfit.FitPoints(pts, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedFit measures one §3.2 NNLS speed-model fit.
func BenchmarkSpeedFit(b *testing.B) {
	m := workload.ZooByName("resnet-50")
	var samples []speedfit.Sample
	for p := 1; p <= 12; p++ {
		for w := 1; w <= 12; w++ {
			samples = append(samples, speedfit.Sample{
				P: p, W: w, Speed: m.TrueSpeed(speedfit.Sync, p, w),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := speedfit.Fit(speedfit.Sync, samples, float64(m.GlobalBatch)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNLS measures the Lawson–Hanson solver cold (a fresh workspace per
// solve, what one-shot callers see) and warm (one reused workspace whose
// previous passive set seeds the next solve). The problem sequence mimics the
// online refit pattern: one design matrix against slightly perturbed
// observations, so the active set rarely changes between solves and the warm
// start skips re-discovering it.
func BenchmarkNNLS(b *testing.B) {
	const rows, cols = 144, 6
	rng := rand.New(rand.NewSource(3))
	m := &nnls.Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	// Ground truth with inactive coordinates makes the active-set search
	// non-trivial; subtracting a multiple of the inactive columns keeps their
	// duals firmly negative, so the optimal passive set is stable across the
	// perturbed observations (the case warm-starting is designed for).
	truth := []float64{1.5, 0, 0.8, 0, 2.2, 0}
	rhss := make([][]float64, 8)
	for v := range rhss {
		rhs := make([]float64, rows)
		for i := 0; i < rows; i++ {
			var dot float64
			for j := 0; j < cols; j++ {
				if truth[j] > 0 {
					dot += m.Data[i*cols+j] * truth[j]
				} else {
					dot -= 0.2 * m.Data[i*cols+j]
				}
			}
			rhs[i] = dot * (1 + 0.005*rng.NormFloat64())
		}
		rhss[v] = rhs
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nnls.Solve(m, rhss[i%len(rhss)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ws := nnls.NewWorkspace()
		for i := 0; i < b.N; i++ {
			if _, _, err := ws.Solve(m, rhss[i%len(rhss)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedInterval runs the same full simulation with the internal/obs
// layer off and on; the ns/op delta between the subbenchmarks is the whole
// cost of span recording, grant auditing and latency histograms (budgeted at
// <5% in DESIGN.md §13). One op is an entire multi-interval run, so the
// measurement covers every traced code path, not a microbenchmark of one.
func BenchmarkTracedInterval(b *testing.B) {
	jobs := workload.Generate(workload.GenConfig{
		N: 9, Horizon: 8000, Seed: 101,
		Downscale: 0.03, Arrivals: workload.UniformArrivals,
	})
	// The sinks live across iterations exactly as in a daemon, whose rings
	// wrap in place for the life of the process; constructing (or zeroing)
	// multi-megabyte rings per run would measure setup, not tracing.
	tr := obs.NewTracer(obs.DefaultSpanBuffer)
	au := obs.NewAuditLog(obs.DefaultAuditBuffer)
	run := func(b *testing.B, traced bool) {
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{
				Cluster:        cluster.Testbed(),
				Jobs:           jobs,
				Policy:         sim.OptimusPolicy(),
				Interval:       600,
				Seed:           1,
				PreRunSamples:  6,
				SpeedNoise:     0.03,
				LossNoise:      0.01,
				PriorityFactor: 0.95,
			}
			if traced {
				cfg.Trace = tr
				cfg.Audit = au
			}
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkPAA measures the §5.3 parameter-assignment algorithm on
// ResNet-50's 157 blocks.
func BenchmarkPAA(b *testing.B) {
	blocks := workload.ZooByName("resnet-50").ParameterBlocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psassign.PAA(blocks, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSStep measures one synchronous PS training step end to end
// (pull, gradient, push) over each transport.
func BenchmarkPSStep(b *testing.B) {
	for _, tr := range []psys.TransportKind{psys.TransportLocal, psys.TransportTCP} {
		b.Run(string(tr), func(b *testing.B) {
			data, _, err := psys.SyntheticRegression(512, 64, 0.01, 1)
			if err != nil {
				b.Fatal(err)
			}
			job, err := psys.StartJob(psys.JobConfig{
				Model: psys.LinearRegression{Features: 64}, Data: data,
				Mode: speedfit.Sync, Workers: 2, Servers: 2,
				BatchSize: 32, LR: 0.05, Transport: tr, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer job.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := job.RunSteps(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalInterval measures one steady-state scheduling interval
// through the delta-driven session pair (DESIGN.md §15) at the paper's
// scalability design point: 1000 jobs on 1000 nodes.
//
// The churn=N% rows model the dominant steady-state event — N% of the jobs
// report progress and refit their speed models between intervals (SpeedGen
// bump + perturbed surface + updated remaining work) — so the session
// re-derives exactly those jobs' saturations and, with the converged models
// still yielding the same allocation, reuses the cached placement untouched.
// churn=0% is the pure clean-interval fast path and, with churn=1%, the
// <100µs acceptance target. The membership=1% row instead replaces 1% of the
// job set (one completion + one arrival each): changed membership reorders
// the §4.2 smallest-share-first sequence, and byte-identity with the
// from-scratch reference means every downstream placement must be recomputed,
// so this row runs near full-kernel cost — the honest upper bound, not the
// steady state. dirty/op and migrated/op report how much real work each
// interval did: re-allocated jobs and previously-running tasks whose node
// assignment changed.
func BenchmarkIncrementalInterval(b *testing.B) {
	const nJobs, nNodes = 1000, 1000
	type params struct {
		sa, sb, scale float64
	}
	run := func(b *testing.B, frac float64, membership bool) {
		rng := rand.New(rand.NewSource(7))
		nextID := 1
		mkSpeed := func(p params) func(int, int) float64 {
			return func(pp, w int) float64 {
				return p.scale * p.sa * float64(pp*w) / (p.sb*float64(pp) + float64(w))
			}
		}
		pars := make([]params, nJobs)
		gens := make([]uint64, nJobs)
		mkJob := func(i int) *core.JobInfo {
			pars[i] = params{
				sa:    0.5 + rng.Float64(),
				sb:    0.5 + rng.Float64()*2,
				scale: 1,
			}
			gens[i]++
			wcpu := 2 + float64(rng.Intn(6))
			pcpu := 1 + float64(rng.Intn(4))
			j := &core.JobInfo{
				ID:            nextID,
				RemainingWork: 1000 + rng.Float64()*100000,
				Speed:         mkSpeed(pars[i]),
				SpeedGen:      gens[i],
				WorkerRes:     cluster.Resources{cluster.CPU: wcpu, cluster.Memory: 4 * wcpu},
				PSRes:         cluster.Resources{cluster.CPU: pcpu, cluster.Memory: 4 * pcpu},
				MaxWorkers:    4,
				MaxPS:         2,
			}
			nextID++
			return j
		}
		refit := func(i int, j *core.JobInfo) {
			// One interval of progress and a slightly shifted fitted surface:
			// the job is dirty (its saturation is re-derived), but the
			// converged model still saturates the same caps, so the
			// allocation — and therefore the placement — is unchanged.
			j.RemainingWork *= 0.999
			pars[i].scale = 1 + 1e-4*rng.Float64()
			j.Speed = mkSpeed(pars[i])
			gens[i]++
			j.SpeedGen = gens[i]
		}
		jobs := make([]*core.JobInfo, nJobs)
		for i := range jobs {
			jobs[i] = mkJob(i)
		}
		// Generous headroom: every job saturates its caps, so the allocation
		// is uncontended and the session's incremental tier stays eligible
		// (see core.AllocSession).
		cl := cluster.Uniform(nNodes, cluster.Resources{
			cluster.CPU: 64, cluster.Memory: 256,
		})
		capacity := cl.Capacity()
		inc := core.NewIncremental()
		reqs := make([]core.PlacementRequest, 0, nJobs)
		interval := func() {
			alloc := inc.Alloc.Allocate(jobs, capacity)
			reqs = reqs[:0]
			for _, in := range jobs {
				a := alloc[in.ID]
				if a.PS > 0 && a.Workers > 0 {
					reqs = append(reqs, core.PlacementRequest{
						JobID: in.ID, Alloc: a,
						WorkerRes: in.WorkerRes, PSRes: in.PSRes,
					})
				}
			}
			inc.Place.Place(reqs, cl)
		}
		interval() // the first interval is the full from-scratch pass
		k := int(float64(nJobs) * frac)
		pos := 0
		base := inc.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				if membership {
					jobs[pos] = mkJob(pos) // one completion + one arrival
				} else {
					refit(pos, jobs[pos])
				}
				pos = (pos + 1) % nJobs
			}
			interval()
		}
		b.StopTimer()
		st := inc.Stats()
		b.ReportMetric(float64(st.DirtyJobs-base.DirtyJobs)/float64(b.N), "dirty/op")
		b.ReportMetric(float64(st.TasksMigrated-base.TasksMigrated)/float64(b.N), "migrated/op")
	}
	for _, churn := range []float64{0, 0.01, 0.10} {
		b.Run(fmt.Sprintf("churn=%g%%", churn*100), func(b *testing.B) {
			run(b, churn, false)
		})
	}
	b.Run("membership=1%", func(b *testing.B) { run(b, 0.01, true) })
}

// BenchmarkCells measures one full scheduling interval (allocate + place) at
// the scalability design point — 10k jobs across 10k nodes — for the
// single-engine §4 kernels and the sharded multi-cell scheduler at several
// cell counts. The multi-cell rows also report the optimistic-commit
// protocol's per-interval conflict and retry counts, the price of computing
// cells in parallel against possibly-stale snapshots.
func BenchmarkCells(b *testing.B) {
	const nJobs, nNodes = 10000, 10000
	mkJobs := func() []*core.JobInfo {
		rng := rand.New(rand.NewSource(1))
		jobs := make([]*core.JobInfo, nJobs)
		for i := range jobs {
			wcpu := 2 + float64(rng.Intn(6))
			pcpu := 1 + float64(rng.Intn(4))
			sa := 0.5 + rng.Float64()
			sb := 0.5 + rng.Float64()*2
			jobs[i] = &core.JobInfo{
				ID:            i + 1,
				RemainingWork: 1000 + rng.Float64()*100000,
				Speed: func(p, w int) float64 {
					return sa * float64(p*w) / (sb*float64(p) + float64(w))
				},
				WorkerRes:  cluster.Resources{cluster.CPU: wcpu, cluster.Memory: 4 * wcpu},
				PSRes:      cluster.Resources{cluster.CPU: pcpu, cluster.Memory: 4 * pcpu},
				MaxWorkers: 16,
				MaxPS:      16,
			}
		}
		return jobs
	}
	interval := func(b *testing.B,
		allocate func([]*core.JobInfo, cluster.Resources) map[int]core.Allocation,
		place func([]core.PlacementRequest, *cluster.Cluster) (map[int]core.Placement, []int)) {
		jobs := mkJobs()
		cl := cluster.Uniform(nNodes, cluster.Resources{cluster.CPU: 32, cluster.Memory: 128})
		capacity := cl.Capacity()
		reqs := make([]core.PlacementRequest, 0, nJobs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			alloc := allocate(jobs, capacity)
			cl.ResetAll()
			reqs = reqs[:0]
			for _, in := range jobs {
				a := alloc[in.ID]
				if a.PS > 0 && a.Workers > 0 {
					reqs = append(reqs, core.PlacementRequest{
						JobID: in.ID, Alloc: a,
						WorkerRes: in.WorkerRes, PSRes: in.PSRes,
					})
				}
			}
			place(reqs, cl)
		}
	}
	b.Run("engine=single", func(b *testing.B) {
		alloc, place := core.NewAllocState(), core.NewPlaceState()
		interval(b, alloc.Allocate, place.Place)
	})
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cells=%d", n), func(b *testing.B) {
			ms := cells.New(cells.Options{Cells: n})
			interval(b, ms.Allocate, ms.Place)
			st := ms.Stats()
			b.ReportMetric(float64(st.Conflicts)/float64(b.N), "conflicts/op")
			b.ReportMetric(float64(st.Retries)/float64(b.N), "retries/op")
		})
	}
}

// BenchmarkSubmitWAL measures the open-loop admission hot path against each
// WAL durability level: wal=none is the pre-WAL baseline (no log attached),
// off appends without fsync, group batches concurrent acks into shared
// fsyncs (the optimusd default), each fsyncs per record. The gap between
// none and group is the price of crash-consistent admission.
func BenchmarkSubmitWAL(b *testing.B) {
	for _, mode := range []string{"none", "off", "group", "each"} {
		b.Run("wal="+mode, func(b *testing.B) {
			d, err := serve.New(serve.Config{Cluster: cluster.Testbed(), MaxJobs: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			if mode != "none" {
				pol, err := wal.ParseFsyncPolicy(mode)
				if err != nil {
					b.Fatal(err)
				}
				l, err := wal.Open(wal.Options{Dir: b.TempDir(), Fsync: pol})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				d.AttachWAL(l)
			}
			req := serve.SubmitRequest{Model: "resnext-110", Mode: "async"}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := d.Submit(req); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkFlightRecorder measures the always-on black-box flight recorder
// (DESIGN.md §18) on the daemon's scheduling round, its hottest record site:
// identical daemons step through live jobs with the recorder enabled (the
// default) and disabled. The ns/op delta is the recorder's whole budget,
// capped at <2% in the design; allocs/op must be identical — the record path
// is alloc-free, so keeping it on adds no GC pressure.
func BenchmarkFlightRecorder(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "flight=off"
		if on {
			name = "flight=on"
		}
		b.Run(name, func(b *testing.B) {
			d, err := serve.New(serve.Config{Cluster: cluster.Testbed(), MaxJobs: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			d.Flight().SetEnabled(on)
			for i := 0; i < 8; i++ {
				if _, err := d.Submit(serve.SubmitRequest{Model: "resnext-110", Mode: "async"}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Step()
			}
		})
	}
}
